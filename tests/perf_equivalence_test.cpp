// Equivalence oracles for the DESIGN.md §8 hot-path optimizations. Each
// accelerated kernel (equirect sign-test classifier, visibility LUT, fused
// fusion pass, keyed distance sort, scratch-buffer planning) is pinned
// against a naive reference built from the same primitive expressions the
// pre-optimization code evaluated — and the match must be *exact*, not
// approximate, because seeded simulations diff their exports byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "abr/sperke_vra.h"
#include "geo/orientation.h"
#include "geo/visibility.h"
#include "hmp/fusion.h"
#include "hmp/head_trace.h"
#include "hmp/heatmap.h"
#include "media/video_model.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/math.h"

namespace sperke {
namespace {

constexpr int kSamplesPerAxis = 24;  // keep in sync with the reference below

std::shared_ptr<geo::TileGeometry> equirect_geometry(int rows, int cols) {
  return std::make_shared<geo::TileGeometry>(
      geo::make_projection("equirectangular"), geo::TileGrid(rows, cols),
      kSamplesPerAxis);
}

// The pre-optimization visible_tiles: every frustum sample goes through the
// full uv_from_direction -> tile_at chain, with the direction built by the
// same left-associated expression the production loop hoists.
std::vector<geo::TileId> naive_visible_tiles(const geo::TileGeometry& geometry,
                                             const geo::Orientation& view,
                                             const geo::Viewport& viewport) {
  const geo::ViewBasis basis = geo::view_basis(view.normalized());
  const double half_w = deg_to_rad(viewport.width_deg) / 2.0;
  const double half_h = deg_to_rad(viewport.height_deg) / 2.0;
  const double tan_w = std::tan(half_w);
  const double tan_h = std::tan(half_h);
  std::vector<char> seen(static_cast<std::size_t>(geometry.grid().tile_count()), 0);
  const int n = kSamplesPerAxis;
  for (int i = 0; i < n; ++i) {
    const double a = static_cast<double>(i) / (n - 1) * 2.0 - 1.0;
    for (int j = 0; j < n; ++j) {
      const double b = static_cast<double>(j) / (n - 1) * 2.0 - 1.0;
      const geo::Vec3 dir = (basis.forward + basis.right * (a * tan_w) +
                             basis.up * (b * tan_h))
                                .normalized();
      const geo::TileId id =
          geometry.grid().tile_at(geometry.projection().uv_from_direction(dir));
      seen[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::vector<geo::TileId> out;
  for (geo::TileId id = 0; id < geometry.grid().tile_count(); ++id) {
    if (seen[static_cast<std::size_t>(id)]) out.push_back(id);
  }
  return out;
}

TEST(VisibleTilesEquivalence, FastClassifierMatchesNaiveRandomized) {
  const geo::Viewport viewport{100.0, 90.0};
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> yaw(-360.0, 360.0);
  std::uniform_real_distribution<double> pitch(-90.0, 90.0);
  std::uniform_real_distribution<double> roll(-30.0, 30.0);
  for (const auto& [rows, cols] : {std::pair{4, 6}, {8, 12}, {5, 7}, {1, 1}}) {
    const auto geometry = equirect_geometry(rows, cols);
    for (int trial = 0; trial < 200; ++trial) {
      const geo::Orientation view{yaw(rng), pitch(rng),
                                  trial % 3 == 0 ? roll(rng) : 0.0};
      EXPECT_EQ(geometry->visible_tiles(view, viewport),
                naive_visible_tiles(*geometry, view, viewport))
          << "rows=" << rows << " cols=" << cols << " yaw=" << view.yaw_deg
          << " pitch=" << view.pitch_deg << " roll=" << view.roll_deg;
    }
  }
}

TEST(VisibleTilesEquivalence, FastClassifierMatchesNaiveAtEdges) {
  const geo::Viewport viewport{100.0, 90.0};
  const auto geometry = equirect_geometry(4, 6);
  // Poles (degenerate x==y==0 samples), the seam, and exact tile-boundary
  // meridians/parallels — where a one-ulp classifier disagreement would
  // show up first.
  const std::vector<geo::Orientation> edges = {
      {0.0, 90.0, 0.0},    {0.0, -90.0, 0.0},  {180.0, 0.0, 0.0},
      {-180.0, 0.0, 0.0},  {0.0, 0.0, 0.0},    {60.0, 45.0, 0.0},
      {-60.0, -45.0, 0.0}, {120.0, 45.0, 0.0}, {90.0, 89.9, 15.0},
      {-90.0, -89.9, -15.0}, {30.0, 0.0, 0.0}, {0.0, 45.0, 0.0},
  };
  for (const auto& view : edges) {
    EXPECT_EQ(geometry->visible_tiles(view, viewport),
              naive_visible_tiles(*geometry, view, viewport))
        << "yaw=" << view.yaw_deg << " pitch=" << view.pitch_deg;
  }
}

TEST(VisibleTilesEquivalence, OutParamMatchesAllocatingAcrossReuse) {
  const geo::Viewport viewport{100.0, 90.0};
  const auto geometry = equirect_geometry(8, 12);
  geo::TileGeometry::Scratch scratch;
  std::vector<geo::TileId> out;
  for (int trial = 0; trial < 50; ++trial) {
    const geo::Orientation view{trial * 17.3, trial * 1.7 - 40.0, 0.0};
    geometry->visible_tiles(view, viewport, out, scratch);
    EXPECT_EQ(out, geometry->visible_tiles(view, viewport));
  }
}

TEST(VisibleTilesLut, ExactAtSnappedOrientationsAndBoundedOffGrid) {
  const geo::Viewport viewport{100.0, 90.0};
  const auto geometry = equirect_geometry(4, 6);
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> yaw(-180.0, 180.0);
  std::uniform_real_distribution<double> pitch(-90.0, 90.0);
  for (int trial = 0; trial < 150; ++trial) {
    const geo::Orientation view{yaw(rng), pitch(rng), 0.0};
    const geo::Orientation snapped = geo::TileGeometry::lut_snap(view);
    // The LUT answer is the *exact* visible set of the snapped orientation.
    EXPECT_EQ(geometry->visible_tiles_lut(view, viewport),
              geometry->visible_tiles(snapped, viewport));
    // Quantization error bound: the snap moves yaw/pitch by at most half a
    // LUT step (yaw modulo the wrap).
    const double dyaw = std::abs(
        angle_diff_deg(snapped.yaw_deg, view.normalized().yaw_deg));
    EXPECT_LE(dyaw, geo::TileGeometry::kLutStepDeg / 2.0 + 1e-9);
    EXPECT_LE(std::abs(snapped.pitch_deg - view.normalized().pitch_deg),
              geo::TileGeometry::kLutStepDeg / 2.0 + 1e-9);
  }
  // On-grid orientations are their own snap: the LUT is exact there.
  for (int iy = 0; iy < 120; iy += 13) {
    for (int ip = 0; ip <= 60; ip += 7) {
      const geo::Orientation on_grid{iy * 3.0 - 180.0, ip * 3.0 - 90.0, 0.0};
      EXPECT_EQ(geo::TileGeometry::lut_snap(on_grid).yaw_deg,
                on_grid.normalized().yaw_deg);
      EXPECT_EQ(geometry->visible_tiles_lut(on_grid, viewport),
                geometry->visible_tiles(on_grid, viewport));
    }
  }
}

TEST(VisibleTilesLut, RollAndOtherViewportsFallBackExactly) {
  const geo::Viewport bound{100.0, 90.0};
  const geo::Viewport other{80.0, 70.0};
  const auto geometry = equirect_geometry(4, 6);
  (void)geometry->visible_tiles_lut({0.0, 0.0, 0.0}, bound);  // bind the LUT
  const geo::Orientation rolled{41.0, 13.0, 25.0};
  EXPECT_EQ(geometry->visible_tiles_lut(rolled, bound),
            geometry->visible_tiles(rolled, bound));
  const geo::Orientation view{41.0, 13.0, 0.0};
  EXPECT_EQ(geometry->visible_tiles_lut(view, other),
            geometry->visible_tiles(view, other));
}

TEST(TilesByDistance, TiesBreakByAscendingTileId) {
  const auto geometry = equirect_geometry(4, 6);
  // A view on the lon==0 tile boundary at the equator is mirror-symmetric,
  // so equal-distance pairs are guaranteed to exist.
  for (const auto& view : {geo::Orientation{0.0, 0.0, 0.0},
                           geo::Orientation{90.0, 0.0, 0.0},
                           geo::Orientation{37.0, 21.0, 0.0}}) {
    const auto order = geometry->tiles_by_distance(view);
    const auto dist = geometry->tile_distances_deg(view);
    ASSERT_EQ(order.size(), dist.size());
    int ties = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
      const double prev = dist[static_cast<std::size_t>(order[i - 1])];
      const double cur = dist[static_cast<std::size_t>(order[i])];
      ASSERT_LE(prev, cur);
      if (prev == cur) {
        ++ties;
        EXPECT_LT(order[i - 1], order[i])
            << "equal-distance tiles must stay in ascending id order";
      }
    }
    if (view.yaw_deg == 0.0 && view.pitch_deg == 0.0) {
      EXPECT_GT(ties, 0) << "symmetric view should produce distance ties";
    }
  }
}

// The pre-optimization FusionPredictor::tile_probabilities: four separate
// full-grid passes (blend, floor, prune, renormalize) built from the public
// surface of the predictor. Must match the fused single pass bit-for-bit.
std::vector<double> naive_tile_probabilities(
    const hmp::FusionPredictor& fusion, const geo::TileGeometry& geometry,
    const hmp::ViewingHeatmap* crowd,
    const std::optional<hmp::HeadSample>& last_sample, sim::Duration horizon,
    media::ChunkIndex chunk) {
  const geo::Viewport& viewport = fusion.viewport();
  const hmp::ViewingContext& context = fusion.context();
  const hmp::FusionConfig& config = fusion.config();
  const int n = geometry.grid().tile_count();
  const double h = std::max(sim::to_seconds(horizon), 0.0);

  const geo::Orientation predicted = fusion.predict_orientation(horizon);
  const double engagement = std::clamp(context.engagement, 0.0, 1.0);
  const double sigma = config.sigma_base_deg +
                       config.sigma_growth_dps * (1.5 - engagement) * h;
  const double fov_radius =
      std::min(viewport.width_deg, viewport.height_deg) / 2.0;
  const auto dist = geometry.tile_distances_deg(predicted);
  std::vector<double> motion(static_cast<std::size_t>(n));
  double motion_total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double excess =
        std::max(0.0, dist[static_cast<std::size_t>(i)] - fov_radius);
    motion[static_cast<std::size_t>(i)] =
        std::exp(-(excess * excess) / (2.0 * sigma * sigma));
    motion_total += motion[static_cast<std::size_t>(i)];
  }

  const bool have_crowd = crowd != nullptr && crowd->total(chunk) > 0.0;
  std::vector<double> crowd_prob;
  if (have_crowd) crowd_prob = crowd->probabilities(chunk);

  const double w_motion_raw = std::exp(
      -std::max(0.0, h - config.motion_grace_s) / config.motion_tau_s);
  const double w_motion = have_crowd ? w_motion_raw : 1.0;
  const double w_crowd = 1.0 - w_motion;
  const double uniform = 1.0 / static_cast<double>(n);

  std::vector<double> prob(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    prob[s] = w_motion * (motion[s] / motion_total);
    if (have_crowd) prob[s] += w_crowd * crowd_prob[s];
  }
  for (double& p : prob) p = (1.0 - config.uniform_floor) * p +
                             config.uniform_floor * uniform;

  if (last_sample.has_value()) {
    if (context.max_speed_dps.has_value()) {
      const double fov_diag =
          std::hypot(viewport.width_deg, viewport.height_deg) / 2.0;
      const double reach = *context.max_speed_dps * h + fov_diag;
      const auto cur_dist =
          geometry.tile_distances_deg(last_sample->orientation);
      for (int i = 0; i < n; ++i) {
        if (cur_dist[static_cast<std::size_t>(i)] > reach) {
          prob[static_cast<std::size_t>(i)] = 0.0;
        }
      }
    }
    if (context.pose.has_value()) {
      const double band = hmp::pose_yaw_half_range_deg(*context.pose) +
                          viewport.width_deg / 2.0;
      for (int i = 0; i < n; ++i) {
        const double lon =
            geo::lonlat_from_direction(geometry.tile_center_direction(i)).lon_deg;
        if (std::abs(angle_diff_deg(lon, context.home_yaw_deg)) > band) {
          prob[static_cast<std::size_t>(i)] = 0.0;
        }
      }
    }
  }

  double total = 0.0;
  for (int i = 0; i < n; ++i) total += prob[static_cast<std::size_t>(i)];
  if (total <= 0.0) {
    std::fill(prob.begin(), prob.end(), uniform);
  } else {
    for (double& p : prob) p /= total;
  }
  return prob;
}

void expect_exact_equal(const std::vector<double>& got,
                        const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Exact: the fused pass applies the identical operation sequence.
    EXPECT_EQ(got[i], want[i]) << what << " tile " << i;
  }
}

TEST(FusionEquivalence, FusedPassMatchesNaiveRandomized) {
  const auto geometry = equirect_geometry(4, 6);
  std::mt19937 rng(777);
  std::uniform_real_distribution<double> yaw(-180.0, 180.0);
  std::uniform_real_distribution<double> pitch(-60.0, 60.0);

  hmp::ViewingHeatmap crowd(geometry->grid().tile_count(), 10);
  std::vector<geo::TileId> viewed{0, 1, 2, 7, 8};
  for (media::ChunkIndex c = 0; c < 10; c += 2) crowd.add_view(c, viewed);

  const std::vector<hmp::ViewingContext> contexts = {
      {},
      {.pose = hmp::Pose::kSitting,
       .max_speed_dps = {},
       .home_yaw_deg = 30.0,
       .engagement = 0.9},
      {.pose = {}, .max_speed_dps = 120.0, .home_yaw_deg = 0.0,
       .engagement = 0.2},
      {.pose = hmp::Pose::kLying,
       .max_speed_dps = 60.0,
       .home_yaw_deg = -45.0,
       .engagement = 0.5},
  };
  for (const auto& context : contexts) {
    for (const hmp::ViewingHeatmap* crowd_ptr :
         {static_cast<const hmp::ViewingHeatmap*>(nullptr),
          static_cast<const hmp::ViewingHeatmap*>(&crowd)}) {
      hmp::FusionPredictor fusion(
          geometry, {100.0, 90.0},
          hmp::make_orientation_predictor("linear-regression"), crowd_ptr,
          context);
      std::optional<hmp::HeadSample> last;
      for (int k = 0; k < 20; ++k) {
        const hmp::HeadSample sample{sim::milliseconds(40 * k),
                                     {yaw(rng), pitch(rng), 0.0}};
        fusion.observe(sample);
        last = sample;
        if (k % 5 != 0) continue;
        for (const auto horizon :
             {sim::milliseconds(200), sim::seconds(1), sim::seconds(4)}) {
          const media::ChunkIndex chunk = k % 10;
          const auto naive = naive_tile_probabilities(
              fusion, *geometry, crowd_ptr, last, horizon, chunk);
          // First call fills the memos; second call must hit them and
          // reproduce the same values exactly.
          expect_exact_equal(fusion.tile_probabilities(horizon, chunk), naive,
                             "cold");
          expect_exact_equal(fusion.tile_probabilities(horizon, chunk), naive,
                             "memoized");
        }
      }
    }
  }
}

TEST(FusionEquivalence, CrowdMemoInvalidatesOnHeatmapMutation) {
  const auto geometry = equirect_geometry(4, 6);
  hmp::ViewingHeatmap crowd(geometry->grid().tile_count(), 4);
  std::vector<geo::TileId> viewed{3, 4, 5};
  crowd.add_view(1, viewed);
  hmp::FusionPredictor fusion(
      geometry, {100.0, 90.0},
      hmp::make_orientation_predictor("linear-regression"), &crowd, {});
  std::optional<hmp::HeadSample> last;
  for (int k = 0; k < 5; ++k) {
    const hmp::HeadSample sample{sim::milliseconds(40 * k),
                                 {k * 10.0, 0.0, 0.0}};
    fusion.observe(sample);
    last = sample;
  }
  const auto horizon = sim::seconds(2);
  expect_exact_equal(
      fusion.tile_probabilities(horizon, 1),
      naive_tile_probabilities(fusion, *geometry, &crowd, last, horizon, 1),
      "before mutation");
  // Mutate the heatmap under the memo; the version bump must retire it.
  std::vector<geo::TileId> more{10, 11};
  crowd.add_view(1, more);
  expect_exact_equal(
      fusion.tile_probabilities(horizon, 1),
      naive_tile_probabilities(fusion, *geometry, &crowd, last, horizon, 1),
      "after mutation");
}

TEST(HeatmapEquivalence, IncrementalTotalsMatchRecomputedSums) {
  hmp::ViewingHeatmap heatmap(24, 6);
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> chunk_of(0, 5);
  std::uniform_int_distribution<int> tile_of(0, 23);
  for (int k = 0; k < 100; ++k) {
    std::vector<geo::TileId> view;
    for (int t = 0; t < 1 + k % 7; ++t) view.push_back(tile_of(rng));
    heatmap.add_view(chunk_of(rng), view);
  }
  hmp::ViewingHeatmap pooled(24, 6);
  pooled.merge(heatmap);
  pooled.merge(heatmap);
  for (media::ChunkIndex c = 0; c < 6; ++c) {
    double sum = 0.0;
    for (geo::TileId t = 0; t < 24; ++t) sum += heatmap.count(c, t);
    EXPECT_EQ(heatmap.total(c), sum);
    EXPECT_EQ(pooled.total(c), 2.0 * sum);
  }
}

TEST(LinkEquivalence, ActiveTransferCounterTracksWarmupChurnAndCancel) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(8'000.0),
                                 .rtt = sim::milliseconds(20), .faults = {}});
  int completions = 0;
  const auto count_completed = [&](const net::TransferResult& r) {
    if (r.completed()) ++completions;
  };
  const auto id1 = link.start_transfer(100'000, count_completed);
  const auto id2 = link.start_transfer(200'000, count_completed);
  link.start_transfer(50'000, count_completed);
  EXPECT_EQ(link.active_transfers(), 0);  // all in RTT warmup
  simulator.run_until(sim::milliseconds(25));
  EXPECT_EQ(link.active_transfers(), 3);
  EXPECT_TRUE(link.cancel(id2));
  EXPECT_EQ(link.active_transfers(), 2);
  EXPECT_FALSE(link.cancel(id2));
  simulator.run_until(sim::seconds(600.0));
  EXPECT_EQ(link.active_transfers(), 0);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(link.transfer_rate_kbps(id1), 0.0);  // finished: no longer rated
}

TEST(LinkEquivalence, ChurnIsDeterministicAcrossRuns) {
  const auto run = [] {
    sim::Simulator simulator;
    net::Link link(simulator,
                   net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(40'000.0),
                                   .rtt = sim::milliseconds(10),
                                   .loss_rate = 0.01, .faults = {}});
    std::vector<std::int64_t> completion_ticks;
    for (int i = 0; i < 24; ++i) {
      simulator.schedule_at(sim::milliseconds(i * 7), [&link, &completion_ticks] {
        link.start_transfer(
            60'000, [&link, &completion_ticks](const net::TransferResult& r) {
              completion_ticks.push_back(r.time.count());
              link.start_transfer(
                  30'000, [&completion_ticks](const net::TransferResult& r2) {
                    completion_ticks.push_back(r2.time.count());
                  });
            });
      });
    }
    simulator.run_until(sim::seconds(5.0));
    completion_ticks.push_back(link.bytes_delivered());
    return completion_ticks;
  };
  EXPECT_EQ(run(), run());
}

TEST(PlanEquivalence, PlanChunkIntoMatchesPlanChunkAcrossWorkspaceReuse) {
  media::VideoModelConfig cfg;
  cfg.duration_s = 30.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  const auto video = std::make_shared<media::VideoModel>(cfg);
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> mass(0.0, 1.0);
  for (const auto mode : {abr::EncodingMode::kSvc, abr::EncodingMode::kHybrid,
                          abr::EncodingMode::kAvcRefetch}) {
    abr::SperkeVraConfig vra_cfg;
    vra_cfg.mode = mode;
    const abr::SperkeVra vra(video, vra_cfg);
    abr::SperkeVra::PlanWorkspace workspace;  // reused across every call
    abr::ChunkPlan reused;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> probs(static_cast<std::size_t>(video->tile_count()));
      double total = 0.0;
      for (double& p : probs) total += (p = mass(rng));
      for (double& p : probs) p /= total;
      const auto fov = video->geometry().visible_tiles(
          {trial * 31.0, trial * 3.0 - 30.0, 0.0}, {100.0, 90.0});
      const auto index = static_cast<media::ChunkIndex>(trial % 30);
      const double kbps = 4'000.0 + 900.0 * trial;
      const auto plan = vra.plan_chunk(index, fov, probs, kbps,
                                       sim::seconds(2.0), trial % 5);
      vra.plan_chunk_into(index, fov, probs, kbps, sim::seconds(2.0),
                          trial % 5, workspace, reused);
      EXPECT_EQ(reused.index, plan.index);
      EXPECT_EQ(reused.fov_quality, plan.fov_quality);
      ASSERT_EQ(reused.fetches.size(), plan.fetches.size());
      for (std::size_t i = 0; i < plan.fetches.size(); ++i) {
        EXPECT_EQ(reused.fetches[i].address, plan.fetches[i].address);
        EXPECT_EQ(reused.fetches[i].spatial, plan.fetches[i].spatial);
        EXPECT_EQ(reused.fetches[i].visibility_probability,
                  plan.fetches[i].visibility_probability);
      }
    }
  }
}

}  // namespace
}  // namespace sperke
