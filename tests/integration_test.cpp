// Cross-module integration tests: whole streaming sessions exercising the
// paper's claims end to end (FoV-guided savings, SVC upgrades, crowd-aware
// HMP, multipath), at small scale so they run fast under ctest.
//
// Single-link worlds are described as engine::WorldSpec and run through
// engine::ShardedEngine — the declarative path shared with the benches and
// examples. Multipath topologies are not (yet) part of the engine's link
// model and keep wiring the simulator directly.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/session.h"
#include "core/transport.h"
#include "engine/engine.h"
#include "engine/world.h"
#include "hmp/heatmap.h"
#include "mp/multipath.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace sperke {
namespace {

constexpr double kVideoSeconds = 20.0;

media::VideoModelConfig video_config() {
  media::VideoModelConfig cfg;
  cfg.duration_s = kVideoSeconds;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 11;
  return cfg;
}

std::shared_ptr<media::VideoModel> make_video() {
  return std::make_shared<media::VideoModel>(video_config());
}

hmp::HeadTraceConfig trace_config(std::uint64_t seed) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = kVideoSeconds + 60.0;
  cfg.sample_rate_hz = 25.0;
  cfg.profile = hmp::UserProfile::adult();
  cfg.attractors = hmp::default_attractors(cfg.duration_s, 99);
  cfg.seed = seed;
  return cfg;
}

hmp::HeadTrace make_trace(std::uint64_t seed) {
  return hmp::generate_head_trace(trace_config(seed));
}

// One-session world on one link, the workhorse harness of this suite.
core::SessionReport run_one_session(net::LinkConfig link,
                                    core::SessionConfig config,
                                    std::uint64_t trace_seed,
                                    const hmp::ViewingHeatmap* crowd,
                                    double horizon_s) {
  engine::WorldSpec spec;
  spec.video = video_config();
  spec.trace_template = trace_config(trace_seed);
  spec.trace_pool = 1;
  spec.link = std::move(link);
  spec.transport_max_concurrent = 4;
  spec.sessions = 1;
  spec.session = std::move(config);
  spec.crowd = crowd;
  spec.horizon = sim::seconds(horizon_s);
  spec.shards = 1;
  engine::EngineResult result = engine::run_world(std::move(spec));
  return std::move(result.reports.front());
}

core::SessionReport run_single_link(double kbps, core::SessionConfig config,
                                    std::uint64_t trace_seed = 21,
                                    const hmp::ViewingHeatmap* crowd = nullptr) {
  net::LinkConfig link{.name = "link",
                       .bandwidth = net::BandwidthTrace::constant(kbps),
                       .rtt = sim::milliseconds(30),
                       .loss_rate = 0.0, .faults = {}};
  return run_one_session(std::move(link), std::move(config), trace_seed, crowd,
                         kVideoSeconds + 200.0);
}

TEST(Integration, FovGuidedSavesSubstantialBandwidth) {
  // §2: tiling saves ~45-80% of bytes vs FoV-agnostic delivery.
  core::SessionConfig guided;
  guided.abr.sperke.regular_vra = "fixed-3";
  core::SessionConfig agnostic;
  agnostic.planner = core::PlannerMode::kFovAgnostic;
  agnostic.abr.sperke.regular_vra = "fixed-3";
  const auto g = run_single_link(60'000.0, guided);
  const auto a = run_single_link(60'000.0, agnostic);
  ASSERT_TRUE(g.completed);
  ASSERT_TRUE(a.completed);
  const double saving = 1.0 - static_cast<double>(g.qoe.bytes_downloaded) /
                                  static_cast<double>(a.qoe.bytes_downloaded);
  EXPECT_GT(saving, 0.30);
  EXPECT_LT(saving, 0.90);
}

TEST(Integration, FovGuidedMatchesAgnosticQualityAtLowerCost) {
  core::SessionConfig guided;
  core::SessionConfig agnostic;
  agnostic.planner = core::PlannerMode::kFovAgnostic;
  // At constrained bandwidth the guided client should show *better*
  // viewport quality: it spends bytes only where the user looks.
  const auto g = run_single_link(5'000.0, guided);
  const auto a = run_single_link(5'000.0, agnostic);
  ASSERT_TRUE(g.completed);
  ASSERT_TRUE(a.completed);
  EXPECT_GT(g.qoe.mean_viewport_utility, a.qoe.mean_viewport_utility);
}

TEST(Integration, SvcBeatsAvcNoUpgradeOnViewportQuality) {
  // §3.1: with imperfect HMP, the ability to upgrade mispredicted tiles
  // should lift displayed quality.
  core::SessionConfig svc;
  svc.abr.sperke.mode = abr::EncodingMode::kSvc;
  core::SessionConfig avc;
  avc.abr.sperke.mode = abr::EncodingMode::kAvcNoUpgrade;
  const auto r_svc = run_single_link(15'000.0, svc);
  const auto r_avc = run_single_link(15'000.0, avc);
  ASSERT_TRUE(r_svc.completed);
  ASSERT_TRUE(r_avc.completed);
  EXPECT_GE(r_svc.qoe.mean_viewport_utility, r_avc.qoe.mean_viewport_utility);
}

TEST(Integration, CrowdPriorDoesNotHurtQoe) {
  // Build a crowd heatmap from other users of the same video.
  auto video = make_video();
  hmp::ViewingHeatmap crowd(video->tile_count(), video->chunk_count());
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    crowd.add_trace(make_trace(seed), video->geometry(), {100.0, 90.0},
                    video->chunk_duration());
  }
  core::SessionConfig config;
  const auto with_crowd = run_single_link(15'000.0, config, 21, &crowd);
  const auto without = run_single_link(15'000.0, config, 21, nullptr);
  ASSERT_TRUE(with_crowd.completed);
  ASSERT_TRUE(without.completed);
  EXPECT_GE(with_crowd.qoe.score, without.qoe.score - 1.0);
}

TEST(Integration, SessionOverMultipathTransport) {
  sim::Simulator simulator;
  net::Link wifi(simulator,
                 net::LinkConfig{.name = "wifi",
                                 .bandwidth = net::BandwidthTrace::constant(12'000.0),
                                 .rtt = sim::milliseconds(20),
                                 .loss_rate = 0.0, .faults = {}});
  net::Link lte(simulator,
                net::LinkConfig{.name = "lte",
                                .bandwidth = net::BandwidthTrace::constant(6'000.0),
                                .rtt = sim::milliseconds(60),
                                .loss_rate = 0.005, .faults = {}});
  mp::MultipathTransport transport(simulator, {&wifi, &lte},
                                   std::make_unique<mp::ContentAwareScheduler>());
  auto video = make_video();
  const auto trace = make_trace(33);
  core::StreamingSession session(simulator, video, transport, trace,
                                 core::SessionConfig{});
  session.start();
  simulator.run_until(sim::seconds(kVideoSeconds + 200.0));
  const auto report = session.report();
  ASSERT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, static_cast<int>(kVideoSeconds));
  // Both paths carried traffic, FoV went to the better one.
  const auto& stats = transport.stats();
  EXPECT_GT(stats.bytes_per_path[0], 0);
  EXPECT_GT(stats.bytes_per_path[1], 0);
  EXPECT_GT(stats.class_counts[2] + stats.class_counts[0], 0);  // FoV classes
  EXPECT_GT(stats.class_counts[3], 0);                          // OOS regular
}

TEST(Integration, MultipathAggregatesBandwidthUnderLoad) {
  // Pin the quality to a level whose FoV demand (~5 Mbps) exceeds one
  // path's capacity: alone, the session must stall; aggregated over both
  // paths, it should keep up.
  auto run = [&](bool use_both) {
    sim::Simulator simulator;
    net::Link wifi(simulator,
                   net::LinkConfig{.name = "wifi",
                                   .bandwidth = net::BandwidthTrace::constant(5'000.0),
                                   .rtt = sim::milliseconds(20), .faults = {}});
    net::Link lte(simulator,
                  net::LinkConfig{.name = "lte",
                                  .bandwidth = net::BandwidthTrace::constant(5'000.0),
                                  .rtt = sim::milliseconds(50), .faults = {}});
    std::unique_ptr<mp::PathScheduler> scheduler;
    if (use_both) {
      scheduler = std::make_unique<mp::MinRttScheduler>();
    } else {
      scheduler = std::make_unique<mp::SinglePathScheduler>(0);
    }
    mp::MultipathTransport transport(simulator, {&wifi, &lte}, std::move(scheduler));
    auto video = make_video();
    const auto trace = make_trace(44);
    core::SessionConfig config;
    config.abr.sperke.regular_vra = "fixed-3";
    core::StreamingSession session(simulator, video, transport, trace, config);
    session.start();
    simulator.run_until(sim::seconds(kVideoSeconds + 400.0));
    return session.report();
  };
  const auto both = run(true);
  const auto single = run(false);
  ASSERT_TRUE(both.completed);
  EXPECT_LT(both.qoe.stall_seconds, single.qoe.stall_seconds);
}

TEST(Integration, FluctuatingBandwidthStillCompletes) {
  net::LinkConfig link{.name = "lte",
                       .bandwidth = net::BandwidthTrace::random_walk(
                           10'000.0, 0.4, 1.0, 300.0, 3, 1'500.0, 40'000.0),
                       .rtt = sim::milliseconds(40),
                       .loss_rate = 0.0, .faults = {}};
  const auto report = run_one_session(std::move(link), core::SessionConfig{},
                                      55, nullptr, 400.0);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, static_cast<int>(kVideoSeconds));
}

TEST(Integration, TotalOutageStallsThenRecovers) {
  // Failure injection: the link goes fully dark for 10 s mid-session. The
  // session must stall (not crash, not skip) and finish after recovery.
  net::LinkConfig link{.name = "flaky",
                       .bandwidth = net::BandwidthTrace::steps(
                           {{0.0, 20'000.0}, {6.0, 0.0}, {16.0, 20'000.0}}),
                       .rtt = sim::milliseconds(30), .faults = {}};
  const auto report = run_one_session(std::move(link), core::SessionConfig{},
                                      66, nullptr, 300.0);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, static_cast<int>(kVideoSeconds));
  EXPECT_GT(report.qoe.stall_seconds, 1.0);   // the outage hurt...
  EXPECT_LT(report.qoe.stall_seconds, 15.0);  // ...but recovery was prompt
}

TEST(Integration, LossySpikyLinkStillCompletes) {
  // Failure injection: heavy random loss plus a bursty two-state channel.
  net::LinkConfig link{.name = "lossy",
                       .bandwidth = net::BandwidthTrace::markov_two_state(
                           12'000.0, 800.0, 6.0, 3.0, 400.0, 9),
                       .rtt = sim::milliseconds(80),
                       .loss_rate = 0.01, .faults = {}};
  const auto report = run_one_session(std::move(link), core::SessionConfig{},
                                      77, nullptr, 2'000.0);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, static_cast<int>(kVideoSeconds));
}

TEST(Integration, BufferVraAndMpcAlsoDriveSessions) {
  for (const char* vra : {"buffer", "mpc"}) {
    core::SessionConfig config;
    config.abr.sperke.regular_vra = vra;
    const auto report = run_single_link(20'000.0, config);
    EXPECT_TRUE(report.completed) << vra;
    EXPECT_EQ(report.qoe.chunks_played, static_cast<int>(kVideoSeconds)) << vra;
  }
}

}  // namespace
}  // namespace sperke
