#include <gtest/gtest.h>

#include <memory>

#include "hmp/head_trace.h"
#include "player/decoder_model.h"
#include "player/pipeline.h"
#include "sim/simulator.h"

namespace sperke::player {
namespace {

DecoderModelConfig default_model() { return DecoderModelConfig{}; }

TEST(DecoderModel, EffectiveDecodeGrowsWithContention) {
  const auto cfg = default_model();
  EXPECT_LT(effective_decode_ms(cfg, 1), effective_decode_ms(cfg, 4));
  EXPECT_LT(effective_decode_ms(cfg, 4), effective_decode_ms(cfg, 8));
  EXPECT_THROW((void)effective_decode_ms(cfg, 0), std::invalid_argument);
}

TEST(DecoderModel, Figure5ConfigurationOrdering) {
  const auto cfg = default_model();
  const double fps1 = analytic_fps(cfg, {.parallel_decoders = false,
                                         .frame_cache = false,
                                         .fov_only = false},
                                   8);
  const double fps2 = analytic_fps(cfg, {.parallel_decoders = true,
                                         .frame_cache = true,
                                         .fov_only = false},
                                   8);
  const double fps3 = analytic_fps(cfg, {.parallel_decoders = true,
                                         .frame_cache = true,
                                         .fov_only = true},
                                   4);
  EXPECT_LT(fps1, fps2);
  EXPECT_LT(fps2, fps3);
  // Rough calibration against the paper's 11 / 53 / 120 FPS.
  EXPECT_NEAR(fps1, 11.0, 3.0);
  EXPECT_NEAR(fps2, 53.0, 6.0);
  EXPECT_GT(fps3, 95.0);
}

TEST(DecoderModel, DisplayCapBinds) {
  auto cfg = default_model();
  cfg.base_decode_ms_per_tile = 0.1;
  cfg.render_ms_per_tile = 0.01;
  cfg.compose_ms = 0.1;
  const double fps = analytic_fps(cfg, {true, true, true}, 1);
  EXPECT_DOUBLE_EQ(fps, cfg.display_cap_fps);
}

TEST(DecoderModel, ParallelWithoutCacheIsIntermediate) {
  const auto cfg = default_model();
  const double fps_neither = analytic_fps(cfg, {false, false, false}, 8);
  const double fps_parallel_only = analytic_fps(cfg, {true, false, false}, 8);
  const double fps_both = analytic_fps(cfg, {true, true, false}, 8);
  EXPECT_GT(fps_parallel_only, fps_neither);
  EXPECT_GT(fps_both, fps_parallel_only);
}

TEST(DecoderModel, RejectsZeroTiles) {
  EXPECT_THROW((void)analytic_fps(default_model(), {true, true, false}, 0),
               std::invalid_argument);
}

TEST(FrameCache, StoresAndEvicts) {
  FrameCache cache(4);
  EXPECT_TRUE(cache.put(0, 1));
  EXPECT_TRUE(cache.put(0, 2));
  EXPECT_TRUE(cache.contains(0, 1));
  EXPECT_FALSE(cache.contains(1, 1));
  cache.evict_before(1);
  EXPECT_FALSE(cache.contains(0, 1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FrameCache, CapacityBounds) {
  FrameCache cache(2);
  EXPECT_TRUE(cache.put(0, 0));
  EXPECT_TRUE(cache.put(0, 1));
  EXPECT_FALSE(cache.put(0, 2));        // full
  EXPECT_TRUE(cache.put(0, 1));         // duplicate is fine
  EXPECT_THROW(FrameCache(0), std::invalid_argument);
}

TEST(DecoderPool, RespectsCapacity) {
  sim::Simulator simulator;
  DecoderPool pool(simulator, default_model());
  EXPECT_EQ(pool.capacity(), 8);
  int done = 0;
  for (int i = 0; i < 8; ++i) pool.decode([&] { ++done; });
  EXPECT_FALSE(pool.has_free());
  EXPECT_THROW(pool.decode([] {}), std::logic_error);
  simulator.run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(pool.tiles_decoded(), 8);
  EXPECT_TRUE(pool.has_free());
}

TEST(DecoderPool, ContentionSlowsSimultaneousJobs) {
  sim::Simulator simulator;
  DecoderPool pool(simulator, default_model());
  sim::Time first_done{}, last_done{};
  pool.decode([&] { first_done = simulator.now(); });
  simulator.run();
  const sim::Duration solo = first_done - sim::kTimeZero;
  sim::Simulator sim2;
  DecoderPool pool2(sim2, default_model());
  for (int i = 0; i < 8; ++i) {
    pool2.decode([&] { last_done = sim2.now(); });
  }
  sim2.run();
  EXPECT_GT(last_done - sim::kTimeZero, solo);
}

class PlayerSimTest : public ::testing::Test {
 protected:
  std::shared_ptr<geo::TileGeometry> geometry =
      std::make_shared<geo::TileGeometry>(geo::make_projection("equirectangular"),
                                          geo::TileGrid(2, 4));

  hmp::HeadTrace trace = [] {
    hmp::HeadTraceConfig cfg;
    cfg.duration_s = 20.0;
    cfg.sample_rate_hz = 25.0;
    cfg.profile = hmp::UserProfile::adult();
    cfg.seed = 77;
    return hmp::generate_head_trace(cfg);
  }();

  double run_fps(PipelineConfig pipeline) {
    sim::Simulator simulator;
    PlayerSimulation::Config cfg;
    cfg.pipeline = pipeline;
    PlayerSimulation player(simulator, geometry, trace, cfg);
    player.start();
    simulator.run_until(sim::seconds(10.0));
    return player.measured_fps();
  }
};

TEST_F(PlayerSimTest, MeasuredFpsMatchesFigure5Ordering) {
  const double fps1 = run_fps({false, false, false});
  const double fps2 = run_fps({true, true, false});
  const double fps3 = run_fps({true, true, true});
  EXPECT_LT(fps1, fps2);
  EXPECT_LT(fps2, fps3);
  EXPECT_GT(fps1, 5.0);
  EXPECT_LT(fps3, 121.0);
}

TEST_F(PlayerSimTest, MeasuredCloseToAnalytic) {
  const double measured = run_fps({true, true, false});
  const double analytic = analytic_fps(default_model(), {true, true, false}, 8);
  EXPECT_NEAR(measured, analytic, analytic * 0.25);
}

TEST_F(PlayerSimTest, FovOnlyDecodesFewerTiles) {
  sim::Simulator s1, s2;
  PlayerSimulation::Config all_cfg;
  all_cfg.pipeline = {true, true, false};
  PlayerSimulation all_tiles(s1, geometry, trace, all_cfg);
  all_tiles.start();
  s1.run_until(sim::seconds(5.0));
  PlayerSimulation::Config fov_cfg;
  fov_cfg.pipeline = {true, true, true};
  PlayerSimulation fov_only(s2, geometry, trace, fov_cfg);
  fov_only.start();
  s2.run_until(sim::seconds(5.0));
  // FoV-only renders more frames from fewer decoded tiles per frame.
  EXPECT_GT(fov_only.frames_rendered(), all_tiles.frames_rendered());
}

TEST_F(PlayerSimTest, RejectsBadConfig) {
  sim::Simulator simulator;
  PlayerSimulation::Config cfg;
  cfg.prefetch_frames = 0;
  EXPECT_THROW(PlayerSimulation(simulator, geometry, trace, cfg),
               std::invalid_argument);
  PlayerSimulation::Config ok;
  PlayerSimulation player(simulator, geometry, trace, ok);
  player.start();
  EXPECT_THROW(player.start(), std::logic_error);
}

}  // namespace
}  // namespace sperke::player
