// Telemetry subsystem tests: metrics-registry semantics (handles, name
// collisions, histogram bucketing) and exporter determinism — two sessions
// with identical seeds must produce byte-identical Chrome trace JSON, and
// the metrics CSV must agree exactly with the SessionReport it mirrors.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "live/broadcast.h"
#include "live/platform.h"
#include "media/video_model.h"
#include "net/link.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sim_monitor.h"
#include "obs/slo.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/csv.h"

namespace {

using namespace sperke;

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("fetches");
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5);

  obs::Gauge& g = registry.gauge("depth");
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
}

TEST(Metrics, SameNameSameKindReturnsSameInstrument) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x");
  a.add(7);
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7);
  EXPECT_EQ(registry.size(), 1u);

  // Histogram bounds of the first registration win.
  obs::Histogram& h1 = registry.histogram("lat", {1.0, 2.0});
  obs::Histogram& h2 = registry.histogram("lat", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, NameCollisionAcrossKindsThrows) {
  obs::MetricsRegistry registry;
  (void)registry.counter("clash");
  EXPECT_THROW((void)registry.gauge("clash"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("clash"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
}

TEST(Metrics, FindDoesNotCreate) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_gauge("nope"), nullptr);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
  EXPECT_EQ(registry.size(), 0u);

  (void)registry.counter("c");
  EXPECT_NE(registry.find_counter("c"), nullptr);
  // Wrong-kind lookup is nullptr, not a throw.
  EXPECT_EQ(registry.find_gauge("c"), nullptr);
}

TEST(Metrics, HistogramBucketingAndStats) {
  obs::Histogram h({1.0, 5.0, 10.0});
  EXPECT_THROW(obs::Histogram({5.0, 1.0}), std::invalid_argument);

  h.observe(0.5);   // bucket le1
  h.observe(1.0);   // le1 (upper bound inclusive)
  h.observe(3.0);   // le5
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.mean(), 104.5 / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{2, 1, 0, 1}));

  obs::Histogram empty({1.0});
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
}

TEST(Metrics, QuantileBoundEmptyHistogramIsZero) {
  const obs::Histogram hist({1.0, 2.0});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 1.0), 0.0);
}

TEST(Metrics, QuantileBoundSingleBucket) {
  obs::Histogram hist({5.0});
  hist.observe(1.0);
  hist.observe(2.0);
  hist.observe(3.0);
  // Every sample sits in the one finite bucket, so any interior quantile
  // reports its upper bound...
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.5), 5.0);
  // ...while q=1 walks past every finite bucket and reports the true max.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 1.0), 3.0);
}

TEST(Metrics, QuantileBoundExtremeQuantiles) {
  obs::Histogram hist({1.0, 10.0, 100.0});
  for (const double x : {0.5, 5.0, 5.0, 50.0}) hist.observe(x);
  // q=0 is the first non-empty bucket's bound; q=1 is the observed max.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 1.0), 50.0);
}

TEST(Metrics, QuantileBoundOverflowBucketReportsMax) {
  obs::Histogram hist({1.0});
  hist.observe(42.0);  // beyond the last finite bound
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.5), 42.0);
}

TEST(Metrics, EntriesPreserveRegistrationOrder) {
  obs::MetricsRegistry registry;
  (void)registry.counter("b");
  (void)registry.gauge("a");
  (void)registry.histogram("c");
  (void)registry.counter("b");  // re-resolve must not reorder
  ASSERT_EQ(registry.entries().size(), 3u);
  EXPECT_EQ(registry.entries()[0].name, "b");
  EXPECT_EQ(registry.entries()[1].name, "a");
  EXPECT_EQ(registry.entries()[2].name, "c");
}

TEST(Trace, RecorderAppendsInOrder) {
  obs::Telemetry telemetry;
  telemetry.trace().record({.type = obs::TraceEventType::kStallBegin,
                            .ts = sim::seconds(1.0)});
  telemetry.trace().record({.type = obs::TraceEventType::kStallEnd,
                            .ts = sim::seconds(2.5),
                            .value = 1.5});
  ASSERT_EQ(telemetry.trace().size(), 2u);
  EXPECT_EQ(telemetry.trace().events()[0].type, obs::TraceEventType::kStallBegin);
  EXPECT_EQ(telemetry.trace().events()[1].value, 1.5);
  telemetry.trace().clear();
  EXPECT_EQ(telemetry.trace().size(), 0u);
}

TEST(Trace, EventNamesAndCategoriesAreStable) {
  EXPECT_EQ(obs::trace_event_name(obs::TraceEventType::kFetchDispatched),
            "FetchDispatched");
  EXPECT_EQ(obs::trace_event_category(obs::TraceEventType::kFetchDispatched),
            "fetch");
  EXPECT_EQ(obs::trace_event_name(obs::TraceEventType::kUpgradeDecided),
            "UpgradeDecided");
  EXPECT_EQ(obs::trace_event_category(obs::TraceEventType::kPathAssigned),
            "multipath");
}

// ---------------------------------------------------------------------------
// End-to-end: an instrumented seeded session.
// ---------------------------------------------------------------------------

constexpr double kVideoSeconds = 20.0;

std::shared_ptr<media::VideoModel> make_video() {
  media::VideoModelConfig cfg;
  cfg.duration_s = kVideoSeconds;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 11;
  return std::make_shared<media::VideoModel>(cfg);
}

hmp::HeadTrace make_trace(std::uint64_t seed) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = kVideoSeconds + 60.0;
  cfg.profile = hmp::UserProfile::adult();
  cfg.attractors = hmp::default_attractors(cfg.duration_s, 99);
  cfg.seed = seed;
  return hmp::generate_head_trace(cfg);
}

// An outage mid-session guarantees at least one stall; SVC defaults with
// recovering bandwidth guarantee upgrades.
core::SessionReport run_instrumented(obs::Telemetry* telemetry) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "flaky",
                                 .bandwidth = net::BandwidthTrace::steps(
                                     {{0.0, 20'000.0}, {6.0, 0.0}, {16.0, 20'000.0}}),
                                 .rtt = sim::milliseconds(30), .faults = {}});
  core::SingleLinkTransport transport(
      link, {.max_concurrent = 4, .telemetry = telemetry, .recovery = {}});
  auto video = make_video();
  const auto trace = make_trace(66);
  core::SessionConfig config;
  config.telemetry = telemetry;
  core::StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(300.0));
  return session.report();
}

TEST(TelemetryEndToEnd, MetricsMirrorSessionReportExactly) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.qoe.stall_seconds, 0.0);

  const obs::MetricsRegistry& m = telemetry.metrics();
  ASSERT_NE(m.find_counter("session.fetches"), nullptr);
  EXPECT_EQ(m.find_counter("session.fetches")->value(), report.fetches);
  EXPECT_EQ(m.find_counter("session.urgent_fetches")->value(),
            report.urgent_fetches);
  EXPECT_EQ(m.find_counter("session.upgrades")->value(), report.upgrades);
  EXPECT_EQ(m.find_counter("session.late_corrections")->value(),
            report.late_corrections);
  EXPECT_EQ(m.find_counter("session.chunks_played")->value(),
            report.qoe.chunks_played);
  EXPECT_EQ(m.find_counter("session.stall_events")->value(),
            report.qoe.stall_events);
  // Bit-exact: both sides sum to_seconds(stall) per event in the same order.
  const obs::Histogram* stall_s = m.find_histogram("session.stall_s");
  ASSERT_NE(stall_s, nullptr);
  EXPECT_EQ(stall_s->sum(), report.qoe.stall_seconds);
  EXPECT_EQ(stall_s->count(), report.qoe.stall_events);
}

TEST(TelemetryEndToEnd, TraceContainsFetchStallUpgradeWithMonotonicTime) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  ASSERT_TRUE(report.completed);

  int dispatched = 0, done = 0, stalls_begin = 0, stalls_end = 0, upgrades = 0;
  sim::Time last{sim::kTimeZero};
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    EXPECT_GE(e.ts, last) << "trace timestamps must be monotonic";
    last = e.ts;
    switch (e.type) {
      case obs::TraceEventType::kFetchDispatched: ++dispatched; break;
      case obs::TraceEventType::kFetchDone: ++done; break;
      case obs::TraceEventType::kStallBegin: ++stalls_begin; break;
      case obs::TraceEventType::kStallEnd: ++stalls_end; break;
      case obs::TraceEventType::kUpgradeDecided: ++upgrades; break;
      default: break;
    }
  }
  EXPECT_EQ(dispatched, report.fetches);
  EXPECT_EQ(done, report.fetches);  // single link never drops
  EXPECT_EQ(stalls_begin, report.qoe.stall_events);
  EXPECT_EQ(stalls_end, report.qoe.stall_events);
  // One decision event per committed upgrade decision; each dispatches at
  // least one upgrade or late-correction fetch (possibly several SVC layers).
  EXPECT_GT(upgrades, 0);
  EXPECT_LE(upgrades, report.upgrades + report.late_corrections);
  EXPECT_EQ(telemetry.trace().events().front().type,
            obs::TraceEventType::kSessionStart);
}

TEST(TelemetryEndToEnd, IdenticalSeedsProduceByteIdenticalExports) {
  obs::Telemetry first;
  obs::Telemetry second;
  const auto report_a = run_instrumented(&first);
  const auto report_b = run_instrumented(&second);
  ASSERT_TRUE(report_a.completed);
  ASSERT_TRUE(report_b.completed);

  std::ostringstream json_a, json_b;
  obs::write_chrome_trace(json_a, first.trace().events());
  obs::write_chrome_trace(json_b, second.trace().events());
  EXPECT_FALSE(json_a.str().empty());
  EXPECT_EQ(json_a.str(), json_b.str());

  std::ostringstream csv_a, csv_b;
  obs::write_metrics_csv(csv_a, first.metrics());
  obs::write_metrics_csv(csv_b, second.metrics());
  EXPECT_EQ(csv_a.str(), csv_b.str());

  std::ostringstream jsonl_a, jsonl_b;
  obs::write_trace_jsonl(jsonl_a, first.trace().events());
  obs::write_trace_jsonl(jsonl_b, second.trace().events());
  EXPECT_EQ(jsonl_a.str(), jsonl_b.str());
}

TEST(TelemetryEndToEnd, ChromeTraceIsWellFormedJson) {
  obs::Telemetry telemetry;
  (void)run_instrumented(&telemetry);
  std::ostringstream out;
  obs::write_chrome_trace(out, telemetry.trace().events());
  const std::string json = out.str();

  // Structural sanity without a JSON parser: the array brackets balance,
  // every brace pairs up, and the span/metadata phases appear.
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // paired spans
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("\"name\":\"Fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Stall\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"UpgradeDecided\""), std::string::npos);
}

TEST(TelemetryEndToEnd, MetricsCsvCarriesSessionRows) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  std::ostringstream out;
  obs::write_metrics_csv(out, telemetry.metrics());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("name,kind,count,sum,mean,min,max,value,buckets"),
            std::string::npos);
  EXPECT_NE(csv.find("session.fetches,counter"), std::string::npos);
  EXPECT_NE(csv.find("session.stall_s,histogram"), std::string::npos);
  EXPECT_NE(csv.find("transport.requests,counter"), std::string::npos);
  // The counter row carries the exact report value.
  EXPECT_NE(csv.find("session.fetches,counter,,,,,," +
                     std::to_string(report.fetches)),
            std::string::npos);
}

TEST(TelemetryEndToEnd, DisabledTelemetryRecordsNothing) {
  const auto report = run_instrumented(nullptr);
  EXPECT_TRUE(report.completed);  // null sink is the default-off fast path
}

TEST(SimMonitorTest, SamplesQueueDepthAndThroughput) {
  obs::Telemetry telemetry;
  sim::Simulator simulator;
  obs::SimMonitor monitor(simulator, telemetry, sim::seconds(1.0));
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_at(sim::milliseconds(100 * i), [] {});
  }
  simulator.run_until(sim::seconds(10.0));
  const obs::Counter* samples = telemetry.metrics().find_counter("sim.samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GE(samples->value(), 5);
  const obs::Histogram* depth =
      telemetry.metrics().find_histogram("sim.queue_depth_hist");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count(), samples->value());
  EXPECT_NE(telemetry.metrics().find_gauge("sim.events_per_sec"), nullptr);
}

#if SPERKE_DCHECK_IS_ON
TEST(MetricsDeathTest, CounterDecrementTripsDcheck) {
  obs::Counter c;
  EXPECT_DEATH(c.add(-1), "counter decremented");
}
#endif

TEST(Metrics, GaugeAddIsRelativeAndSigned) {
  obs::Gauge g;
  g.add(2.0);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

// ---------------------------------------------------------------------------
// Time series sampling (DESIGN.md §12).
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, RecordsDeltasSamplesAndIntervalQuantiles) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("fetches");
  obs::Gauge& g = registry.gauge("depth");
  obs::Histogram& h = registry.histogram("lat_s", {1.0, 5.0});

  obs::TimeSeriesStore store(sim::seconds(1.0));
  EXPECT_THROW(obs::TimeSeriesStore(sim::Duration{0}), std::invalid_argument);

  c.add(3);
  g.set(2.0);
  h.observe(0.5);
  store.sample(registry);
  c.add(2);
  g.set(7.5);
  h.observe(100.0);  // overflow bucket
  store.sample(registry);

  ASSERT_EQ(store.intervals(), 2u);
  EXPECT_EQ(store.interval_end(0), sim::seconds(1.0));
  EXPECT_EQ(store.interval_end(1), sim::seconds(2.0));

  const obs::TimeSeries* fetches = store.find("fetches");
  ASSERT_NE(fetches, nullptr);
  EXPECT_EQ(fetches->counter_deltas, (std::vector<std::int64_t>{3, 2}));

  const obs::TimeSeries* depth = store.find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->gauge_samples, (std::vector<double>{2.0, 7.5}));

  const obs::TimeSeries* lat = store.find("lat_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count_deltas, (std::vector<std::int64_t>{1, 1}));
  EXPECT_DOUBLE_EQ(obs::series_quantile_bound(*lat, 0, 0.5), 1.0);
  // Interval 1's only sample sits in the overflow bucket: the interval
  // quantile must read as worse-than-any-threshold, not as the lifetime max.
  EXPECT_TRUE(std::isinf(obs::series_quantile_bound(*lat, 1, 0.99)));
  // Across the two-interval window the lower quartile is still finite
  // (q=0.5 of {0.5, overflow} lands exactly on the bucket boundary, and the
  // bound semantics resolve boundary ties upward — to the overflow here).
  EXPECT_DOUBLE_EQ(obs::series_window_quantile_bound(*lat, 0, 1, 0.25), 1.0);
  EXPECT_TRUE(std::isinf(obs::series_window_quantile_bound(*lat, 0, 1, 0.5)));
}

TEST(TimeSeriesTest, LateInstrumentsZeroPadBackToIntervalZero) {
  obs::MetricsRegistry registry;
  obs::TimeSeriesStore store(sim::seconds(1.0));
  store.sample(registry);  // nothing registered yet
  registry.counter("late").add(5);
  store.sample(registry);
  const obs::TimeSeries* late = store.find("late");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->counter_deltas, (std::vector<std::int64_t>{0, 5}));
}

TEST(TimeSeriesTest, MergeAddsElementwiseAndValidatesShape) {
  obs::MetricsRegistry reg_a;
  obs::MetricsRegistry reg_b;
  obs::TimeSeriesStore a(sim::seconds(1.0));
  obs::TimeSeriesStore b(sim::seconds(1.0));
  reg_a.counter("c").add(1);
  reg_b.counter("c").add(10);
  reg_a.gauge("g").set(0.5);
  reg_b.gauge("g").set(2.0);
  a.sample(reg_a);
  b.sample(reg_b);

  a.merge_from(b);
  EXPECT_EQ(a.find("c")->counter_deltas, (std::vector<std::int64_t>{11}));
  // Gauge samples add across shards: the merged level is the fleet total,
  // mirroring Gauge::merge_from.
  EXPECT_EQ(a.find("g")->gauge_samples, (std::vector<double>{2.5}));

  // An inactive store adopts the other wholesale (the engine merges into a
  // default-constructed EngineResult::series).
  obs::TimeSeriesStore merged;
  merged.merge_from(b);
  EXPECT_EQ(merged.period(), sim::seconds(1.0));
  EXPECT_EQ(merged.find("c")->counter_deltas, (std::vector<std::int64_t>{10}));

  // Shape mismatches throw instead of silently corrupting SLO input.
  obs::TimeSeriesStore other_period(sim::seconds(2.0));
  other_period.sample(reg_b);
  EXPECT_THROW(a.merge_from(other_period), std::invalid_argument);
  b.sample(reg_b);  // b now has 2 intervals, a has 1
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SLO evaluation.
// ---------------------------------------------------------------------------

TEST(SloTest, ValidateRejectsMalformedSpecs) {
  obs::SloSpec ok{.name = "stall.ratio_p99", .metric = "m"};
  EXPECT_NO_THROW(obs::validate_slo(ok));
  obs::SloSpec spec = ok;
  spec.name = "Bad Name";
  EXPECT_THROW(obs::validate_slo(spec), std::invalid_argument);
  spec = ok;
  spec.metric = "";
  EXPECT_THROW(obs::validate_slo(spec), std::invalid_argument);
  spec = ok;
  // The quantile only matters (and is only validated) for quantile signals.
  spec.quantile = 1.5;
  EXPECT_NO_THROW(obs::validate_slo(spec));
  spec.signal = obs::SloSignal::kHistogramQuantile;
  EXPECT_THROW(obs::validate_slo(spec), std::invalid_argument);
  spec = ok;
  spec.window_intervals = 0;
  EXPECT_THROW(obs::validate_slo(spec), std::invalid_argument);
}

TEST(SloTest, GaugeSloBreachesClearsAndBurnsBudget) {
  obs::Telemetry telemetry;
  obs::Gauge& stalled = telemetry.metrics().gauge("session.stalled");
  obs::TimeSeriesStore store(sim::seconds(1.0));
  obs::SloEvaluator evaluator(
      {{.name = "stall", .metric = "session.stalled",
        .signal = obs::SloSignal::kGaugeValue, .threshold = 0.5,
        .window_intervals = 1}},
      store, telemetry);
  // The error-budget counter exists before any breach, so the metric set
  // does not depend on the breach pattern.
  ASSERT_NE(telemetry.metrics().find_counter("slo.stall.breached_intervals"),
            nullptr);

  stalled.set(0.0);
  store.sample(telemetry.metrics());
  evaluator.evaluate();  // healthy
  stalled.set(1.0);
  store.sample(telemetry.metrics());
  evaluator.evaluate();  // breach
  store.sample(telemetry.metrics());
  evaluator.evaluate();  // still breached: budget burns, no new event
  stalled.set(0.0);
  store.sample(telemetry.metrics());
  evaluator.evaluate();  // clear

  std::vector<obs::TraceEvent> slo_events;
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    if (e.type == obs::TraceEventType::kSloBreach ||
        e.type == obs::TraceEventType::kSloClear) {
      slo_events.push_back(e);
    }
  }
  ASSERT_EQ(slo_events.size(), 2u);
  EXPECT_EQ(slo_events[0].type, obs::TraceEventType::kSloBreach);
  EXPECT_EQ(slo_events[0].ts, sim::seconds(2.0));  // end of interval 1
  EXPECT_EQ(slo_events[0].chunk, 0);               // SLO index in the spec list
  EXPECT_DOUBLE_EQ(slo_events[0].value, 1.0);      // the breaching signal
  EXPECT_EQ(slo_events[1].type, obs::TraceEventType::kSloClear);
  EXPECT_EQ(slo_events[1].ts, sim::seconds(4.0));

  EXPECT_EQ(
      telemetry.metrics().find_counter("slo.stall.breached_intervals")->value(),
      2);
  const std::vector<obs::SloStatus> status = evaluator.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].name, "stall");
  EXPECT_EQ(status[0].evaluated_intervals, 4);
  EXPECT_EQ(status[0].breached_intervals, 2);
  EXPECT_EQ(status[0].breach_events, 1);
  EXPECT_FALSE(status[0].breached_at_end);
  EXPECT_DOUBLE_EQ(status[0].last_signal, 0.0);
}

TEST(SloTest, CounterRateAndQuantileSignals) {
  obs::Telemetry telemetry;
  obs::Counter& reqs = telemetry.metrics().counter("reqs");
  obs::Histogram& lat = telemetry.metrics().histogram("lat_s", {1.0});
  obs::TimeSeriesStore store(sim::seconds(2.0));
  obs::SloEvaluator evaluator(
      {{.name = "rate", .metric = "reqs",
        .signal = obs::SloSignal::kCounterRate, .threshold = 4.0,
        .window_intervals = 1},
       {.name = "p99", .metric = "lat_s",
        .signal = obs::SloSignal::kHistogramQuantile, .quantile = 0.99,
        .threshold = 1e9, .window_intervals = 1}},
      store, telemetry);

  reqs.add(10);       // 10 per 2 s interval = 5/s > 4 -> rate breaches
  lat.observe(50.0);  // overflow bucket: +inf quantile beats any threshold
  store.sample(telemetry.metrics());
  evaluator.evaluate();

  const std::vector<obs::SloStatus> status = evaluator.status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_TRUE(status[0].breached_at_end);
  EXPECT_DOUBLE_EQ(status[0].last_signal, 5.0);
  EXPECT_TRUE(status[1].breached_at_end);
  EXPECT_TRUE(std::isinf(status[1].last_signal));
}

TEST(SloTest, MergeStatusSumsAcrossShardsAndRequiresSameSpecs) {
  obs::SloStatus a{.name = "s", .evaluated_intervals = 4,
                   .breached_intervals = 1, .breach_events = 1,
                   .breached_at_end = false, .last_signal = 0.5};
  obs::SloStatus b{.name = "s", .evaluated_intervals = 4,
                   .breached_intervals = 3, .breach_events = 2,
                   .breached_at_end = true, .last_signal = 1.0};
  std::vector<obs::SloStatus> into;
  obs::merge_slo_status(into, {a});  // empty side adopts
  obs::merge_slo_status(into, {b});
  ASSERT_EQ(into.size(), 1u);
  EXPECT_EQ(into[0].evaluated_intervals, 4);  // per-shard count, not a sum
  EXPECT_EQ(into[0].breached_intervals, 4);
  EXPECT_EQ(into[0].breach_events, 3);
  EXPECT_TRUE(into[0].breached_at_end);
  EXPECT_DOUBLE_EQ(into[0].last_signal, 1.5);

  std::vector<obs::SloStatus> wrong = {{.name = "other"}};
  EXPECT_THROW(obs::merge_slo_status(wrong, {a}), std::invalid_argument);

  const std::string table =
      obs::slo_table({{.name = "s", .metric = "m"}}, into);
  EXPECT_NE(table.find("s"), std::string::npos);
  EXPECT_NE(table.find("BREACHED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exporters: hostile names, JSONL, nested causal spans.
// ---------------------------------------------------------------------------

TEST(ExportCsv, HostileMetricNamesRoundTripQuoted) {
  // Deliberately evil instrument name: quote, comma, and newline. (tests/
  // is exempt from the lint's metric-name rule for exactly this case.)
  const std::string evil = "evil\"name,with\nnewline";
  obs::MetricsRegistry registry;
  registry.counter(evil).add(7);
  std::ostringstream out;
  obs::write_metrics_csv(out, registry);
  const std::string csv = out.str();
  // Quoted with the embedded quote doubled, per RFC 4180.
  EXPECT_NE(csv.find("\"evil\"\"name,with\nnewline\""), std::string::npos);
  const auto rows = parse_csv(csv);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], evil);
  EXPECT_EQ(rows[1][7], "7");
}

TEST(ExportJsonl, OneObjectPerEventCarryingRequestFields) {
  obs::Telemetry telemetry;
  telemetry.trace().record({.type = obs::TraceEventType::kFetchDispatched,
                            .ts = sim::seconds(1.0),
                            .tile = 3,
                            .chunk = 2,
                            .quality = 1,
                            .request = 5});
  telemetry.trace().record({.type = obs::TraceEventType::kFetchDone,
                            .ts = sim::seconds(1.5),
                            .bytes = 1234,
                            .request = 5,
                            .parent = 4});
  std::ostringstream out;
  obs::write_trace_jsonl(out, telemetry.trace().events());
  const std::string jsonl = out.str();
  std::istringstream lines(jsonl);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 2);
  EXPECT_NE(jsonl.find("\"event\":\"FetchDispatched\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"request\":5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\":4"), std::string::npos);
}

TEST(ExportChromeTrace, NestsAttemptAndRetrySpansByRequestId) {
  std::vector<obs::TraceEvent> events;
  // Request 1: one attempt, delivered.
  events.push_back({.type = obs::TraceEventType::kFetchDispatched,
                    .ts = sim::seconds(1.0), .tile = 0, .chunk = 0,
                    .quality = 2, .request = 1});
  events.push_back({.type = obs::TraceEventType::kFetchAttemptStart,
                    .ts = sim::seconds(1.0), .value = 0.0, .request = 1});
  events.push_back({.type = obs::TraceEventType::kFetchAttemptEnd,
                    .ts = sim::seconds(1.2), .value = 0.0, .request = 1});
  events.push_back({.type = obs::TraceEventType::kFetchDone,
                    .ts = sim::seconds(1.2), .bytes = 100, .request = 1});
  // Request 2 replaces request 1 (degraded retry): its attempt 1 is a
  // transport-level retry, and its fetch span must render as FetchRetry.
  events.push_back({.type = obs::TraceEventType::kFetchDispatched,
                    .ts = sim::seconds(2.0), .tile = 0, .chunk = 0,
                    .quality = 0, .request = 2, .parent = 1});
  events.push_back({.type = obs::TraceEventType::kFetchAttemptStart,
                    .ts = sim::seconds(2.0), .value = 1.0, .request = 2});
  events.push_back({.type = obs::TraceEventType::kFetchAttemptEnd,
                    .ts = sim::seconds(2.4), .value = 1.0, .request = 2});
  events.push_back({.type = obs::TraceEventType::kFetchDone,
                    .ts = sim::seconds(2.4), .bytes = 50, .request = 2,
                    .parent = 1});
  // Request 3 never completes: flushed as an instant, not lost.
  events.push_back({.type = obs::TraceEventType::kFetchDispatched,
                    .ts = sim::seconds(3.0), .tile = 1, .chunk = 1,
                    .quality = 1, .request = 3});

  std::ostringstream out;
  obs::write_chrome_trace(out, events);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"Fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"FetchRetry\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Retry\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"FetchDispatched\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);
  // Both same-cell fetches must close: two X-phase fetch spans, not one.
  EXPECT_NE(json.find("\"dur\":200000"), std::string::npos);  // 1.0 -> 1.2 s
  EXPECT_NE(json.find("\"dur\":400000"), std::string::npos);  // 2.0 -> 2.4 s
}

TEST(TelemetryEndToEnd, FetchEventsCarryUniqueCausalRequestIds) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  ASSERT_TRUE(report.completed);
  std::set<std::int64_t> dispatched_ids;
  int attempts = 0;
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    switch (e.type) {
      case obs::TraceEventType::kFetchDispatched:
        EXPECT_GT(e.request, 0) << "traced dispatch without a request id";
        EXPECT_TRUE(dispatched_ids.insert(e.request).second)
            << "request id " << e.request << " reused";
        break;
      case obs::TraceEventType::kFetchDone:
      case obs::TraceEventType::kFetchDropped:
        EXPECT_TRUE(dispatched_ids.count(e.request))
            << "completion for unknown request " << e.request;
        break;
      case obs::TraceEventType::kFetchAttemptStart:
        EXPECT_TRUE(dispatched_ids.count(e.request))
            << "attempt for unknown request " << e.request;
        ++attempts;
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(dispatched_ids.empty());
  // Every dispatched request puts at least one attempt on the wire.
  EXPECT_GE(attempts, static_cast<int>(dispatched_ids.size()));
}

// ---------------------------------------------------------------------------
// SimMonitor satellites.
// ---------------------------------------------------------------------------

TEST(SimMonitorTest, ZeroElapsedSampleRecordsDepthButNoRate) {
  obs::Telemetry telemetry;
  sim::Simulator simulator;
  obs::SimMonitor monitor(simulator, telemetry, sim::seconds(1.0));
  monitor.sample_now();  // elapsed == 0: must not divide by zero
  EXPECT_EQ(telemetry.metrics().find_counter("sim.samples")->value(), 1);
  EXPECT_EQ(
      telemetry.metrics().find_histogram("sim.queue_depth_hist")->count(), 1);
  EXPECT_DOUBLE_EQ(telemetry.metrics().find_gauge("sim.events_per_sec")->value(),
                   0.0);
}

TEST(SimMonitorTest, StopHaltsSamplingAndReArmContinuesCounts) {
  obs::Telemetry telemetry;
  sim::Simulator simulator;
  const obs::Counter* samples = nullptr;
  {
    obs::SimMonitor monitor(simulator, telemetry, sim::seconds(1.0));
    simulator.run_until(sim::seconds(3.0));
    samples = telemetry.metrics().find_counter("sim.samples");
    ASSERT_NE(samples, nullptr);
    EXPECT_EQ(samples->value(), 3);
    monitor.stop();
    EXPECT_FALSE(monitor.running());
    simulator.run_until(sim::seconds(6.0));
    EXPECT_EQ(samples->value(), 3);  // stopped: no further samples
  }
  // Re-arm on the same telemetry: instruments resolve by name, so the
  // counts continue instead of resetting.
  obs::SimMonitor rearmed(simulator, telemetry, sim::seconds(1.0));
  EXPECT_TRUE(rearmed.running());
  simulator.run_until(sim::seconds(8.0));
  EXPECT_EQ(samples->value(), 5);
}

TEST(SimMonitorTest, QueueDepthQuantileAgreesWithHistogramBound) {
  obs::Telemetry telemetry;
  sim::Simulator simulator;
  obs::SimMonitor monitor(simulator, telemetry, sim::seconds(1.0));
  for (int i = 0; i < 200; ++i) {
    simulator.schedule_at(sim::milliseconds(50 * i), [] {});
  }
  simulator.run_until(sim::seconds(10.0));
  const obs::Histogram* hist =
      telemetry.metrics().find_histogram("sim.queue_depth_hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_GT(hist->count(), 0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(monitor.queue_depth_quantile(q),
                     obs::histogram_quantile_bound(*hist, q))
        << "q=" << q;
  }
}

TEST(LiveTelemetry, LatencyHistogramMirrorsResult) {
  obs::Telemetry telemetry;
  live::LiveBroadcastSession::Config cfg;
  cfg.platform = live::PlatformProfile::facebook();
  cfg.telemetry = &telemetry;
  const auto result = live::LiveBroadcastSession(cfg).run();
  const obs::Histogram* latency =
      telemetry.metrics().find_histogram("live.e2e_latency_s");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), result.segments_displayed);
  EXPECT_NEAR(latency->mean(), result.mean_e2e_latency_s, 1e-9);
  int displayed_events = 0;
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    if (e.type == obs::TraceEventType::kSegmentDisplayed) ++displayed_events;
  }
  EXPECT_GT(displayed_events, 0);
}

}  // namespace
