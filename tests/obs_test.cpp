// Telemetry subsystem tests: metrics-registry semantics (handles, name
// collisions, histogram bucketing) and exporter determinism — two sessions
// with identical seeds must produce byte-identical Chrome trace JSON, and
// the metrics CSV must agree exactly with the SessionReport it mirrors.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/transport.h"
#include "hmp/head_trace.h"
#include "live/broadcast.h"
#include "live/platform.h"
#include "media/video_model.h"
#include "net/link.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sim_monitor.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace {

using namespace sperke;

TEST(Metrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("fetches");
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), 5);

  obs::Gauge& g = registry.gauge("depth");
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
}

TEST(Metrics, SameNameSameKindReturnsSameInstrument) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x");
  a.add(7);
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7);
  EXPECT_EQ(registry.size(), 1u);

  // Histogram bounds of the first registration win.
  obs::Histogram& h1 = registry.histogram("lat", {1.0, 2.0});
  obs::Histogram& h2 = registry.histogram("lat", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, NameCollisionAcrossKindsThrows) {
  obs::MetricsRegistry registry;
  (void)registry.counter("clash");
  EXPECT_THROW((void)registry.gauge("clash"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("clash"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
}

TEST(Metrics, FindDoesNotCreate) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.find_counter("nope"), nullptr);
  EXPECT_EQ(registry.find_gauge("nope"), nullptr);
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
  EXPECT_EQ(registry.size(), 0u);

  (void)registry.counter("c");
  EXPECT_NE(registry.find_counter("c"), nullptr);
  // Wrong-kind lookup is nullptr, not a throw.
  EXPECT_EQ(registry.find_gauge("c"), nullptr);
}

TEST(Metrics, HistogramBucketingAndStats) {
  obs::Histogram h({1.0, 5.0, 10.0});
  EXPECT_THROW(obs::Histogram({5.0, 1.0}), std::invalid_argument);

  h.observe(0.5);   // bucket le1
  h.observe(1.0);   // le1 (upper bound inclusive)
  h.observe(3.0);   // le5
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.mean(), 104.5 / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{2, 1, 0, 1}));

  obs::Histogram empty({1.0});
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
}

TEST(Metrics, QuantileBoundEmptyHistogramIsZero) {
  const obs::Histogram hist({1.0, 2.0});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 1.0), 0.0);
}

TEST(Metrics, QuantileBoundSingleBucket) {
  obs::Histogram hist({5.0});
  hist.observe(1.0);
  hist.observe(2.0);
  hist.observe(3.0);
  // Every sample sits in the one finite bucket, so any interior quantile
  // reports its upper bound...
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.5), 5.0);
  // ...while q=1 walks past every finite bucket and reports the true max.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 1.0), 3.0);
}

TEST(Metrics, QuantileBoundExtremeQuantiles) {
  obs::Histogram hist({1.0, 10.0, 100.0});
  for (const double x : {0.5, 5.0, 5.0, 50.0}) hist.observe(x);
  // q=0 is the first non-empty bucket's bound; q=1 is the observed max.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 1.0), 50.0);
}

TEST(Metrics, QuantileBoundOverflowBucketReportsMax) {
  obs::Histogram hist({1.0});
  hist.observe(42.0);  // beyond the last finite bound
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_bound(hist, 0.5), 42.0);
}

TEST(Metrics, EntriesPreserveRegistrationOrder) {
  obs::MetricsRegistry registry;
  (void)registry.counter("b");
  (void)registry.gauge("a");
  (void)registry.histogram("c");
  (void)registry.counter("b");  // re-resolve must not reorder
  ASSERT_EQ(registry.entries().size(), 3u);
  EXPECT_EQ(registry.entries()[0].name, "b");
  EXPECT_EQ(registry.entries()[1].name, "a");
  EXPECT_EQ(registry.entries()[2].name, "c");
}

TEST(Trace, RecorderAppendsInOrder) {
  obs::Telemetry telemetry;
  telemetry.trace().record({.type = obs::TraceEventType::kStallBegin,
                            .ts = sim::seconds(1.0)});
  telemetry.trace().record({.type = obs::TraceEventType::kStallEnd,
                            .ts = sim::seconds(2.5),
                            .value = 1.5});
  ASSERT_EQ(telemetry.trace().size(), 2u);
  EXPECT_EQ(telemetry.trace().events()[0].type, obs::TraceEventType::kStallBegin);
  EXPECT_EQ(telemetry.trace().events()[1].value, 1.5);
  telemetry.trace().clear();
  EXPECT_EQ(telemetry.trace().size(), 0u);
}

TEST(Trace, EventNamesAndCategoriesAreStable) {
  EXPECT_EQ(obs::trace_event_name(obs::TraceEventType::kFetchDispatched),
            "FetchDispatched");
  EXPECT_EQ(obs::trace_event_category(obs::TraceEventType::kFetchDispatched),
            "fetch");
  EXPECT_EQ(obs::trace_event_name(obs::TraceEventType::kUpgradeDecided),
            "UpgradeDecided");
  EXPECT_EQ(obs::trace_event_category(obs::TraceEventType::kPathAssigned),
            "multipath");
}

// ---------------------------------------------------------------------------
// End-to-end: an instrumented seeded session.
// ---------------------------------------------------------------------------

constexpr double kVideoSeconds = 20.0;

std::shared_ptr<media::VideoModel> make_video() {
  media::VideoModelConfig cfg;
  cfg.duration_s = kVideoSeconds;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 11;
  return std::make_shared<media::VideoModel>(cfg);
}

hmp::HeadTrace make_trace(std::uint64_t seed) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = kVideoSeconds + 60.0;
  cfg.profile = hmp::UserProfile::adult();
  cfg.attractors = hmp::default_attractors(cfg.duration_s, 99);
  cfg.seed = seed;
  return hmp::generate_head_trace(cfg);
}

// An outage mid-session guarantees at least one stall; SVC defaults with
// recovering bandwidth guarantee upgrades.
core::SessionReport run_instrumented(obs::Telemetry* telemetry) {
  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.name = "flaky",
                                 .bandwidth = net::BandwidthTrace::steps(
                                     {{0.0, 20'000.0}, {6.0, 0.0}, {16.0, 20'000.0}}),
                                 .rtt = sim::milliseconds(30), .faults = {}});
  core::SingleLinkTransport transport(
      link, {.max_concurrent = 4, .telemetry = telemetry, .recovery = {}});
  auto video = make_video();
  const auto trace = make_trace(66);
  core::SessionConfig config;
  config.telemetry = telemetry;
  core::StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(300.0));
  return session.report();
}

TEST(TelemetryEndToEnd, MetricsMirrorSessionReportExactly) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  ASSERT_TRUE(report.completed);
  EXPECT_GT(report.qoe.stall_seconds, 0.0);

  const obs::MetricsRegistry& m = telemetry.metrics();
  ASSERT_NE(m.find_counter("session.fetches"), nullptr);
  EXPECT_EQ(m.find_counter("session.fetches")->value(), report.fetches);
  EXPECT_EQ(m.find_counter("session.urgent_fetches")->value(),
            report.urgent_fetches);
  EXPECT_EQ(m.find_counter("session.upgrades")->value(), report.upgrades);
  EXPECT_EQ(m.find_counter("session.late_corrections")->value(),
            report.late_corrections);
  EXPECT_EQ(m.find_counter("session.chunks_played")->value(),
            report.qoe.chunks_played);
  EXPECT_EQ(m.find_counter("session.stall_events")->value(),
            report.qoe.stall_events);
  // Bit-exact: both sides sum to_seconds(stall) per event in the same order.
  const obs::Histogram* stall_s = m.find_histogram("session.stall_s");
  ASSERT_NE(stall_s, nullptr);
  EXPECT_EQ(stall_s->sum(), report.qoe.stall_seconds);
  EXPECT_EQ(stall_s->count(), report.qoe.stall_events);
}

TEST(TelemetryEndToEnd, TraceContainsFetchStallUpgradeWithMonotonicTime) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  ASSERT_TRUE(report.completed);

  int dispatched = 0, done = 0, stalls_begin = 0, stalls_end = 0, upgrades = 0;
  sim::Time last{sim::kTimeZero};
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    EXPECT_GE(e.ts, last) << "trace timestamps must be monotonic";
    last = e.ts;
    switch (e.type) {
      case obs::TraceEventType::kFetchDispatched: ++dispatched; break;
      case obs::TraceEventType::kFetchDone: ++done; break;
      case obs::TraceEventType::kStallBegin: ++stalls_begin; break;
      case obs::TraceEventType::kStallEnd: ++stalls_end; break;
      case obs::TraceEventType::kUpgradeDecided: ++upgrades; break;
      default: break;
    }
  }
  EXPECT_EQ(dispatched, report.fetches);
  EXPECT_EQ(done, report.fetches);  // single link never drops
  EXPECT_EQ(stalls_begin, report.qoe.stall_events);
  EXPECT_EQ(stalls_end, report.qoe.stall_events);
  // One decision event per committed upgrade decision; each dispatches at
  // least one upgrade or late-correction fetch (possibly several SVC layers).
  EXPECT_GT(upgrades, 0);
  EXPECT_LE(upgrades, report.upgrades + report.late_corrections);
  EXPECT_EQ(telemetry.trace().events().front().type,
            obs::TraceEventType::kSessionStart);
}

TEST(TelemetryEndToEnd, IdenticalSeedsProduceByteIdenticalExports) {
  obs::Telemetry first;
  obs::Telemetry second;
  const auto report_a = run_instrumented(&first);
  const auto report_b = run_instrumented(&second);
  ASSERT_TRUE(report_a.completed);
  ASSERT_TRUE(report_b.completed);

  std::ostringstream json_a, json_b;
  obs::write_chrome_trace(json_a, first.trace().events());
  obs::write_chrome_trace(json_b, second.trace().events());
  EXPECT_FALSE(json_a.str().empty());
  EXPECT_EQ(json_a.str(), json_b.str());

  std::ostringstream csv_a, csv_b;
  obs::write_metrics_csv(csv_a, first.metrics());
  obs::write_metrics_csv(csv_b, second.metrics());
  EXPECT_EQ(csv_a.str(), csv_b.str());

  std::ostringstream jsonl_a, jsonl_b;
  obs::write_trace_jsonl(jsonl_a, first.trace().events());
  obs::write_trace_jsonl(jsonl_b, second.trace().events());
  EXPECT_EQ(jsonl_a.str(), jsonl_b.str());
}

TEST(TelemetryEndToEnd, ChromeTraceIsWellFormedJson) {
  obs::Telemetry telemetry;
  (void)run_instrumented(&telemetry);
  std::ostringstream out;
  obs::write_chrome_trace(out, telemetry.trace().events());
  const std::string json = out.str();

  // Structural sanity without a JSON parser: the array brackets balance,
  // every brace pairs up, and the span/metadata phases appear.
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // paired spans
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("\"name\":\"Fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Stall\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"UpgradeDecided\""), std::string::npos);
}

TEST(TelemetryEndToEnd, MetricsCsvCarriesSessionRows) {
  obs::Telemetry telemetry;
  const auto report = run_instrumented(&telemetry);
  std::ostringstream out;
  obs::write_metrics_csv(out, telemetry.metrics());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("name,kind,count,sum,mean,min,max,value,buckets"),
            std::string::npos);
  EXPECT_NE(csv.find("session.fetches,counter"), std::string::npos);
  EXPECT_NE(csv.find("session.stall_s,histogram"), std::string::npos);
  EXPECT_NE(csv.find("transport.requests,counter"), std::string::npos);
  // The counter row carries the exact report value.
  EXPECT_NE(csv.find("session.fetches,counter,,,,,," +
                     std::to_string(report.fetches)),
            std::string::npos);
}

TEST(TelemetryEndToEnd, DisabledTelemetryRecordsNothing) {
  const auto report = run_instrumented(nullptr);
  EXPECT_TRUE(report.completed);  // null sink is the default-off fast path
}

TEST(SimMonitorTest, SamplesQueueDepthAndThroughput) {
  obs::Telemetry telemetry;
  sim::Simulator simulator;
  obs::SimMonitor monitor(simulator, telemetry, sim::seconds(1.0));
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_at(sim::milliseconds(100 * i), [] {});
  }
  simulator.run_until(sim::seconds(10.0));
  const obs::Counter* samples = telemetry.metrics().find_counter("sim.samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GE(samples->value(), 5);
  const obs::Histogram* depth =
      telemetry.metrics().find_histogram("sim.queue_depth_hist");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count(), samples->value());
  EXPECT_NE(telemetry.metrics().find_gauge("sim.events_per_sec"), nullptr);
}

TEST(LiveTelemetry, LatencyHistogramMirrorsResult) {
  obs::Telemetry telemetry;
  live::LiveBroadcastSession::Config cfg;
  cfg.platform = live::PlatformProfile::facebook();
  cfg.telemetry = &telemetry;
  const auto result = live::LiveBroadcastSession(cfg).run();
  const obs::Histogram* latency =
      telemetry.metrics().find_histogram("live.e2e_latency_s");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), result.segments_displayed);
  EXPECT_NEAR(latency->mean(), result.mean_e2e_latency_s, 1e-9);
  int displayed_events = 0;
  for (const obs::TraceEvent& e : telemetry.trace().events()) {
    if (e.type == obs::TraceEventType::kSegmentDisplayed) ++displayed_events;
  }
  EXPECT_GT(displayed_events, 0);
}

}  // namespace
