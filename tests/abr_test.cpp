#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "abr/oos.h"
#include "abr/qoe.h"
#include "abr/regular_vra.h"
#include "abr/sperke_vra.h"

namespace sperke::abr {
namespace {

std::shared_ptr<media::VideoModel> make_video() {
  media::VideoModelConfig cfg;
  cfg.duration_s = 20.0;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 5;
  return std::make_shared<media::VideoModel>(cfg);
}

VraContext context_with(double est_kbps, double buffer_s,
                        media::QualityLevel last = 0) {
  VraContext ctx;
  ctx.level_kbps = {1000.0, 2500.0, 5000.0, 10000.0, 20000.0};
  ctx.level_utility = {0.0, 0.25, 0.5, 0.75, 1.0};
  ctx.estimated_kbps = est_kbps;
  ctx.buffer_level = sim::seconds(buffer_s);
  ctx.last_quality = last;
  return ctx;
}

TEST(QoeTracker, AggregatesScore) {
  QoeTracker tracker;
  tracker.record_played_chunk(0.8, 0.0);
  tracker.record_played_chunk(0.6, 0.1);
  tracker.record_stall(sim::seconds(2.0));
  tracker.record_skip(1);
  tracker.record_downloaded(1000);
  tracker.record_wasted(100);
  const QoeSummary s = tracker.summary();
  EXPECT_EQ(s.chunks_played, 2);
  EXPECT_NEAR(s.mean_viewport_utility, 0.7, 1e-9);
  EXPECT_NEAR(s.stall_seconds, 2.0, 1e-9);
  EXPECT_EQ(s.stall_events, 1);
  EXPECT_EQ(s.skipped_chunks, 1);
  EXPECT_NEAR(s.switch_magnitude, 0.2, 1e-9);
  EXPECT_NEAR(s.blank_fraction_mean, 0.05, 1e-9);
  EXPECT_EQ(s.bytes_downloaded, 1000);
  EXPECT_EQ(s.bytes_wasted, 100);
  // score = 1.4 - 4*2 - 2*1 - 1*0.2 - 4*0.1
  EXPECT_NEAR(s.score, 1.4 - 8.0 - 2.0 - 0.2 - 0.4, 1e-9);
}

TEST(QoeTracker, RejectsBadInputs) {
  QoeTracker tracker;
  EXPECT_THROW(tracker.record_played_chunk(1.5, 0.0), std::invalid_argument);
  EXPECT_THROW(tracker.record_played_chunk(0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(tracker.record_stall(sim::Duration{-1}), std::invalid_argument);
  EXPECT_THROW(tracker.record_skip(-1), std::invalid_argument);
}

TEST(ThroughputVra, PicksSustainableLevel) {
  ThroughputVra vra(0.85);
  EXPECT_EQ(vra.choose(context_with(12000.0, 10.0)), 3);  // 0.85*12000 >= 10000
  EXPECT_EQ(vra.choose(context_with(3000.0, 10.0)), 1);
  EXPECT_EQ(vra.choose(context_with(500.0, 10.0)), 0);
  EXPECT_EQ(vra.choose(context_with(0.0, 10.0)), 0);  // unknown throughput
}

TEST(ThroughputVra, RejectsBadSafety) {
  EXPECT_THROW(ThroughputVra(0.0), std::invalid_argument);
  EXPECT_THROW(ThroughputVra(1.5), std::invalid_argument);
}

TEST(BufferVra, MapsBufferToLadder) {
  BufferVra vra(sim::seconds(5.0), sim::seconds(15.0));
  EXPECT_EQ(vra.choose(context_with(9999.0, 2.0)), 0);   // below reservoir
  EXPECT_EQ(vra.choose(context_with(9999.0, 20.0)), 4);  // above cushion
  EXPECT_EQ(vra.choose(context_with(9999.0, 10.0)), 2);  // midpoint
}

TEST(BufferVra, RejectsBadReservoirs) {
  EXPECT_THROW(BufferVra(sim::seconds(5.0), sim::seconds(5.0)), std::invalid_argument);
}

TEST(MpcVra, HighBandwidthPicksHigh) {
  MpcVra vra;
  EXPECT_GE(vra.choose(context_with(40000.0, 8.0, 4)), 3);
}

TEST(MpcVra, LowBufferIsConservative) {
  MpcVra vra;
  const auto starved = vra.choose(context_with(10000.0, 0.3, 0));
  const auto healthy = vra.choose(context_with(10000.0, 12.0, 0));
  EXPECT_LE(starved, healthy);
}

TEST(MpcVra, SwitchPenaltyDampsJumps) {
  MpcVra damped(3, 4.0, /*switch_penalty=*/50.0);
  // Huge switching penalty: stick near the last quality.
  EXPECT_EQ(damped.choose(context_with(40000.0, 10.0, 1)), 1);
}

TEST(RegularVraFactory, MakesAllKinds) {
  EXPECT_EQ(make_regular_vra("throughput")->name(), "throughput");
  EXPECT_EQ(make_regular_vra("buffer")->name(), "buffer");
  EXPECT_EQ(make_regular_vra("mpc")->name(), "mpc");
  EXPECT_EQ(make_regular_vra("bola")->name(), "bola");
  EXPECT_EQ(make_regular_vra("fixed-2")->name(), "fixed");
  EXPECT_THROW((void)make_regular_vra("festive2"), std::invalid_argument);
}

TEST(BolaVra, QualityRisesWithBuffer) {
  BolaVra vra(12.0);
  const auto starved = vra.choose(context_with(0.0, 0.5));
  const auto mid = vra.choose(context_with(0.0, 8.0));
  const auto full = vra.choose(context_with(0.0, 14.0));
  EXPECT_EQ(starved, 0);
  EXPECT_GE(mid, starved);
  EXPECT_GE(full, mid);
  EXPECT_EQ(full, 4);  // beyond the control region -> top
}

TEST(BolaVra, IgnoresThroughputEstimate) {
  BolaVra vra;
  EXPECT_EQ(vra.choose(context_with(1e9, 0.5)), vra.choose(context_with(0.0, 0.5)));
}

TEST(BolaVra, RejectsBadParameters) {
  EXPECT_THROW(BolaVra(0.0), std::invalid_argument);
  EXPECT_THROW(BolaVra(10.0, 0.0), std::invalid_argument);
}

TEST(FixedVra, ClampsToLadderTop) {
  FixedVra vra(99);
  EXPECT_EQ(vra.choose(context_with(0.0, 0.0)), 4);
  EXPECT_THROW(FixedVra(-1), std::invalid_argument);
}

class OosTest : public ::testing::Test {
 protected:
  std::shared_ptr<media::VideoModel> video = make_video();

  ChunkPlan fov_plan(media::QualityLevel q, const std::vector<geo::TileId>& fov) {
    ChunkPlan plan;
    plan.index = 0;
    plan.fov_quality = q;
    for (geo::TileId tile : fov) {
      plan.fetches.push_back(
          {{{tile, 0}, media::Encoding::kAvc, q}, SpatialClass::kFov, 0.2});
    }
    return plan;
  }

  std::vector<double> uniform_probs() {
    return std::vector<double>(static_cast<std::size_t>(video->tile_count()),
                               1.0 / video->tile_count());
  }
};

TEST_F(OosTest, AddsOosTilesWithinBudget) {
  OosSelector selector({.budget_fraction = 0.5});
  auto plan = fov_plan(3, {0, 1, 6, 7});
  const auto fov_bytes = plan.total_bytes(*video);
  selector.select(plan, *video, {0, 1, 6, 7}, uniform_probs(), media::Encoding::kAvc);
  std::int64_t oos_bytes = 0;
  int oos_count = 0;
  for (const auto& f : plan.fetches) {
    if (f.spatial == SpatialClass::kOos) {
      oos_bytes += video->size_bytes(f.address);
      ++oos_count;
    }
  }
  EXPECT_GT(oos_count, 0);
  // accuracy_scaling with uniform probs roughly doubles the 0.5 budget.
  EXPECT_LE(oos_bytes, fov_bytes);
}

TEST_F(OosTest, ZeroBudgetAddsNothing) {
  OosSelector selector({.budget_fraction = 0.0, .accuracy_scaling = false});
  auto plan = fov_plan(3, {0, 1});
  const auto before = plan.fetches.size();
  selector.select(plan, *video, {0, 1}, uniform_probs(), media::Encoding::kAvc);
  EXPECT_EQ(plan.fetches.size(), before);
}

TEST_F(OosTest, HigherProbabilityTilesChosenFirst) {
  OosSelector selector({.budget_fraction = 1.5, .accuracy_scaling = false});
  auto plan = fov_plan(2, {0});
  auto probs = uniform_probs();
  probs[5] = 0.9;  // one clearly-hot tile
  selector.select(plan, *video, {0}, probs, media::Encoding::kAvc);
  // The hottest candidate must be the first OOS fetch emitted.
  std::optional<geo::TileId> first_oos;
  for (const auto& f : plan.fetches) {
    if (f.spatial == SpatialClass::kOos && !first_oos.has_value()) {
      first_oos = f.address.key.tile;
    }
  }
  ASSERT_TRUE(first_oos.has_value());
  EXPECT_EQ(*first_oos, 5);
}

TEST_F(OosTest, QualityFallsWithRank) {
  OosSelector selector({.budget_fraction = 3.0, .accuracy_scaling = false,
                        .first_quality_drop = 1, .tiles_per_step = 2});
  auto plan = fov_plan(4, {0});
  selector.select(plan, *video, {0}, uniform_probs(), media::Encoding::kAvc);
  media::QualityLevel first_oos = -1, last_oos = 99;
  for (const auto& f : plan.fetches) {
    if (f.spatial != SpatialClass::kOos) continue;
    if (first_oos < 0) first_oos = f.address.level;
    last_oos = f.address.level;
  }
  ASSERT_GE(first_oos, 0);
  EXPECT_EQ(first_oos, 3);         // fov 4 - drop 1
  EXPECT_LT(last_oos, first_oos);  // rank decay kicked in
}

TEST_F(OosTest, SvcEncodingEmitsLayerStacks) {
  OosSelector selector({.budget_fraction = 2.0, .accuracy_scaling = false,
                        .first_quality_drop = 1});
  auto plan = fov_plan(2, {0});
  selector.select(plan, *video, {0}, uniform_probs(), media::Encoding::kSvc);
  // OOS tiles at quality 1 appear as layers 0 and 1.
  int layer0 = 0, layer1 = 0;
  for (const auto& f : plan.fetches) {
    if (f.spatial != SpatialClass::kOos) continue;
    EXPECT_EQ(f.address.encoding, media::Encoding::kSvc);
    if (f.address.level == 0) ++layer0;
    if (f.address.level == 1) ++layer1;
  }
  EXPECT_GT(layer0, 0);
  EXPECT_EQ(layer0, layer1);
}

TEST_F(OosTest, ProbabilityProportionalTracksProbabilities) {
  OosSelector selector({.budget_fraction = 3.0, .accuracy_scaling = false,
                        .quality_policy = OosQualityPolicy::kProbabilityProportional});
  auto plan = fov_plan(4, {0});
  auto probs = uniform_probs();
  probs[5] = 0.5;   // hot
  probs[10] = 0.25; // warm
  selector.select(plan, *video, {0}, probs, media::Encoding::kAvc);
  std::map<geo::TileId, media::QualityLevel> chosen;
  for (const auto& f : plan.fetches) {
    if (f.spatial == SpatialClass::kOos) chosen[f.address.key.tile] = f.address.level;
  }
  ASSERT_TRUE(chosen.contains(5));
  ASSERT_TRUE(chosen.contains(10));
  // Hot tile gets fov_quality-1 = 3; half-probability tile about half that;
  // uniform-probability tiles land at the floor.
  EXPECT_EQ(chosen[5], 3);
  EXPECT_LT(chosen[10], chosen[5]);
  EXPECT_GT(chosen[10], 0);
  bool found_cold = false;
  for (const auto& [tile, q] : chosen) {
    if (tile != 5 && tile != 10) {
      EXPECT_LE(q, 1) << "tile " << tile;
      found_cold = true;
    }
  }
  EXPECT_TRUE(found_cold);
}

TEST_F(OosTest, RejectsBadConfigAndInput) {
  EXPECT_THROW(OosSelector({.budget_fraction = -1.0}), std::invalid_argument);
  EXPECT_THROW(OosSelector({.tiles_per_step = 0}), std::invalid_argument);
  OosSelector ok;
  auto plan = fov_plan(1, {0});
  std::vector<double> wrong_size(3, 0.1);
  EXPECT_THROW(ok.select(plan, *video, {0}, wrong_size, media::Encoding::kAvc),
               std::invalid_argument);
}

class SperkeVraTest : public ::testing::Test {
 protected:
  std::shared_ptr<media::VideoModel> video = make_video();

  SperkeVra make(EncodingMode mode) {
    SperkeVraConfig cfg;
    cfg.mode = mode;
    return SperkeVra(video, cfg);
  }

  std::vector<double> probs_for(const std::vector<geo::TileId>& fov) {
    std::vector<double> probs(static_cast<std::size_t>(video->tile_count()), 0.01);
    for (geo::TileId tile : fov) probs[static_cast<std::size_t>(tile)] = 0.2;
    double sum = 0.0;
    for (double p : probs) sum += p;
    for (double& p : probs) p /= sum;
    return probs;
  }
};

TEST_F(SperkeVraTest, PlanCoversFovAtChosenQuality) {
  auto vra = make(EncodingMode::kAvcRefetch);
  const std::vector<geo::TileId> fov{7, 8, 9, 13, 14, 15};
  const auto plan = vra.plan_chunk(2, fov, probs_for(fov), 20'000.0,
                                   sim::seconds(3.0), 0);
  EXPECT_EQ(plan.index, 2);
  std::set<geo::TileId> planned_fov;
  for (const auto& f : plan.fetches) {
    if (f.spatial == SpatialClass::kFov) {
      planned_fov.insert(f.address.key.tile);
      EXPECT_EQ(f.address.level, plan.fov_quality);
    }
  }
  for (geo::TileId tile : fov) EXPECT_TRUE(planned_fov.contains(tile));
}

TEST_F(SperkeVraTest, SvcModeEmitsLayersZeroThroughQ) {
  auto vra = make(EncodingMode::kSvc);
  const std::vector<geo::TileId> fov{7, 8};
  const auto plan =
      vra.plan_chunk(0, fov, probs_for(fov), 50'000.0, sim::seconds(5.0), 0);
  ASSERT_GT(plan.fov_quality, 0);
  std::map<geo::TileId, std::set<media::LayerIndex>> layers;
  for (const auto& f : plan.fetches) {
    if (f.spatial == SpatialClass::kFov) {
      EXPECT_EQ(f.address.encoding, media::Encoding::kSvc);
      layers[f.address.key.tile].insert(f.address.level);
    }
  }
  for (geo::TileId tile : fov) {
    EXPECT_EQ(static_cast<int>(layers[tile].size()), plan.fov_quality + 1);
    EXPECT_TRUE(layers[tile].contains(0));
  }
}

TEST_F(SperkeVraTest, HigherBandwidthRaisesQuality) {
  auto vra = make(EncodingMode::kSvc);
  const std::vector<geo::TileId> fov{7, 8, 9};
  const auto slow =
      vra.plan_chunk(0, fov, probs_for(fov), 2'000.0, sim::seconds(3.0), 0);
  const auto fast =
      vra.plan_chunk(0, fov, probs_for(fov), 60'000.0, sim::seconds(3.0), 0);
  EXPECT_GT(fast.fov_quality, slow.fov_quality);
}

TEST_F(SperkeVraTest, HybridFovIsAvcOosIsSvc) {
  // §3.1.2 hybrid: FoV tiles are unlikely to upgrade -> AVC (no layering
  // overhead); OOS tiles are the upgrade candidates -> SVC.
  SperkeVraConfig cfg;
  cfg.mode = EncodingMode::kHybrid;
  cfg.oos.budget_fraction = 1.0;
  SperkeVra vra(video, cfg);
  const std::vector<geo::TileId> fov{7, 8};
  const auto plan =
      vra.plan_chunk(0, fov, probs_for(fov), 30'000.0, sim::seconds(3.0), 0);
  bool saw_oos = false;
  for (const auto& f : plan.fetches) {
    if (f.spatial == SpatialClass::kFov) {
      EXPECT_EQ(f.address.encoding, media::Encoding::kAvc);
    } else {
      EXPECT_EQ(f.address.encoding, media::Encoding::kSvc);
      saw_oos = true;
    }
  }
  EXPECT_TRUE(saw_oos);
}

TEST_F(SperkeVraTest, HybridUpgradePicksCheaperPath) {
  SperkeVraConfig cfg;
  cfg.mode = EncodingMode::kHybrid;
  SperkeVra vra(video, cfg);
  const media::ChunkKey key{7, 3};
  // Cell holds only an AVC copy (svc base -1): a full delta stack costs
  // more than the AVC refetch, so refetch wins.
  auto d = vra.consider_upgrade(key, 0, -1, 2, 0.9, sim::seconds(2.0), 50'000.0);
  ASSERT_TRUE(d.upgrade);
  ASSERT_EQ(d.fetches.size(), 1u);
  EXPECT_EQ(d.fetches[0].encoding, media::Encoding::kAvc);
  // Cell holds SVC layers 0..1: the single remaining delta is cheaper.
  d = vra.consider_upgrade(key, 1, 1, 2, 0.9, sim::seconds(2.0), 50'000.0);
  ASSERT_TRUE(d.upgrade);
  ASSERT_EQ(d.fetches.size(), 1u);
  EXPECT_EQ(d.fetches[0].encoding, media::Encoding::kSvc);
  EXPECT_EQ(d.fetches[0].level, 2);
}

TEST_F(SperkeVraTest, UpgradeRequiresWindowAndProbability) {
  auto vra = make(EncodingMode::kSvc);
  const media::ChunkKey key{7, 3};
  // Too early (outside the upgrade window): refuse.
  auto d = vra.consider_upgrade(key, 0, 0, 2, 0.9, sim::seconds(10.0), 50'000.0);
  EXPECT_FALSE(d.upgrade);
  // Inside the window with good probability: upgrade with the deltas only.
  d = vra.consider_upgrade(key, 0, 0, 2, 0.9, sim::seconds(2.0), 50'000.0);
  EXPECT_TRUE(d.upgrade);
  ASSERT_EQ(d.fetches.size(), 2u);
  EXPECT_EQ(d.fetches[0].level, 1);
  EXPECT_EQ(d.fetches[1].level, 2);
  EXPECT_EQ(d.bytes, video->svc_layer_size_bytes(1, key) +
                         video->svc_layer_size_bytes(2, key));
  // Low probability: refuse.
  d = vra.consider_upgrade(key, 0, 0, 2, 0.05, sim::seconds(2.0), 50'000.0);
  EXPECT_FALSE(d.upgrade);
}

TEST_F(SperkeVraTest, UpgradeRespectsDeadlineFeasibility) {
  auto vra = make(EncodingMode::kSvc);
  const media::ChunkKey key{7, 3};
  // Bandwidth far too low to ship the delta in time.
  const auto d = vra.consider_upgrade(key, 0, 0, 4, 0.9, sim::milliseconds(200), 50.0);
  EXPECT_FALSE(d.upgrade);
}

TEST_F(SperkeVraTest, AvcRefetchRedownloadsWholeChunk) {
  auto vra = make(EncodingMode::kAvcRefetch);
  const media::ChunkKey key{7, 3};
  const auto d = vra.consider_upgrade(key, 0, 0, 2, 0.9, sim::seconds(2.0), 50'000.0);
  ASSERT_TRUE(d.upgrade);
  ASSERT_EQ(d.fetches.size(), 1u);
  EXPECT_EQ(d.fetches[0].encoding, media::Encoding::kAvc);
  EXPECT_EQ(d.bytes, video->avc_size_bytes(2, key));
  // The refetch is strictly bigger than the SVC delta would have been.
  EXPECT_GT(d.bytes, video->svc_layer_size_bytes(1, key) +
                         video->svc_layer_size_bytes(2, key));
}

TEST_F(SperkeVraTest, NoUpgradeModeNeverUpgrades) {
  auto vra = make(EncodingMode::kAvcNoUpgrade);
  const auto d =
      vra.consider_upgrade({7, 3}, 0, 0, 2, 0.9, sim::seconds(2.0), 50'000.0);
  EXPECT_FALSE(d.upgrade);
}

TEST_F(SperkeVraTest, LateFetchFromNothingUsesFullStack) {
  auto vra = make(EncodingMode::kSvc);
  const media::ChunkKey key{7, 3};
  const auto d = vra.consider_upgrade(key, -1, -1, 1, 0.9, sim::seconds(2.0), 50'000.0);
  ASSERT_TRUE(d.upgrade);
  ASSERT_EQ(d.fetches.size(), 2u);  // layers 0 and 1
  EXPECT_EQ(d.fetches[0].level, 0);
}

TEST_F(SperkeVraTest, EmptyFovThrows) {
  auto vra = make(EncodingMode::kSvc);
  EXPECT_THROW(
      (void)vra.plan_chunk(0, {}, {}, 10'000.0, sim::seconds(1.0), 0),
      std::invalid_argument);
}

TEST(EncodingModeNames, AllDistinct) {
  EXPECT_EQ(to_string(EncodingMode::kSvc), "svc");
  EXPECT_EQ(to_string(EncodingMode::kHybrid), "hybrid");
  EXPECT_EQ(to_string(EncodingMode::kAvcRefetch), "avc-refetch");
  EXPECT_EQ(to_string(EncodingMode::kAvcNoUpgrade), "avc-no-upgrade");
}

}  // namespace
}  // namespace sperke::abr
