#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>

#include "util/csv.h"
#include "util/log.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace sperke {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 4);
    saw_lo |= (x == 0);
    saw_hi |= (x == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(3);
  Rng child = parent.fork();
  // Child stream should not reproduce the parent stream.
  Rng parent2(3);
  (void)parent2.fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child.uniform(0.0, 1.0) != parent.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  const std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(Rng, WeightedIndexEmptyThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.weighted_index({}), std::invalid_argument);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 101.0), std::invalid_argument);
}

TEST(MathUtil, WrapDeg180) {
  EXPECT_DOUBLE_EQ(wrap_deg180(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg180(190.0), -170.0);
  EXPECT_DOUBLE_EQ(wrap_deg180(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(wrap_deg180(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_deg180(180.0), -180.0);
}

TEST(MathUtil, AngleDiffShortestPath) {
  EXPECT_DOUBLE_EQ(angle_diff_deg(170.0, -170.0), -20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(-170.0, 170.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_diff_deg(10.0, 350.0), 20.0);
}

TEST(MathUtil, DegRadRoundTrip) {
  for (double d : {-180.0, -90.0, 0.0, 45.0, 179.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-12);
  }
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriteThenParseRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"h1", "h,2"});
  w.write_row({"va\"l", "2.5"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"h1", "h,2"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"va\"l", "2.5"}));
}

TEST(Csv, ParsesQuotedNewline) {
  const auto rows = parse_csv("\"a\nb\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a\nb");
  EXPECT_EQ(rows[0][1], "c");
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_THROW((void)parse_csv("\"abc"), std::runtime_error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

// Captures std::clog (the log sink) and restores the process log level, so
// log tests neither pollute other tests' output nor leak a chatty level.
class LogCapture {
 public:
  LogCapture() : saved_level_(log_level()), old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~LogCapture() {
    std::clog.rdbuf(old_);
    set_log_level(saved_level_);
  }
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  LogLevel saved_level_;
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(Log, LevelFilteringDropsBelowThreshold) {
  LogCapture capture;
  set_log_level(LogLevel::Info);
  SPERKE_LOG_TRACE("dropped-trace");
  SPERKE_LOG_DEBUG("dropped-debug ", 1);
  SPERKE_LOG_INFO("kept-info ", 2);
  SPERKE_LOG_WARN("kept-warn");
  SPERKE_LOG_ERROR("kept-error ", 3);
  const std::string out = capture.text();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("[INFO] kept-info 2"), std::string::npos);
  EXPECT_NE(out.find("[WARN] kept-warn"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] kept-error 3"), std::string::npos);
}

TEST(Log, OffSilencesEveryLevel) {
  LogCapture capture;
  set_log_level(LogLevel::Off);
  SPERKE_LOG_TRACE("t");
  SPERKE_LOG_DEBUG("d");
  SPERKE_LOG_INFO("i");
  SPERKE_LOG_WARN("w");
  SPERKE_LOG_ERROR("e");
  EXPECT_EQ(capture.text(), "");
}

TEST(Log, SetLogLevelRoundTrips) {
  LogCapture capture;
  for (const LogLevel level :
       {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
        LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

namespace {
struct Tattletale {
  bool* flag;
};
std::ostream& operator<<(std::ostream& os, const Tattletale& t) {
  *t.flag = true;
  return os;
}
}  // namespace

TEST(Log, FilteredCallDoesNotFormatArguments) {
  LogCapture capture;
  set_log_level(LogLevel::Warn);
  bool formatted = false;
  // Below the threshold the arguments must never be streamed — formatting
  // in the hot path would cost time even when the message is discarded.
  SPERKE_LOG_DEBUG("x", Tattletale{&formatted});
  EXPECT_FALSE(formatted);
  SPERKE_LOG_WARN("x", Tattletale{&formatted});
  EXPECT_TRUE(formatted);
}

TEST(Log, LogMessageRespectsLevelDirectly) {
  LogCapture capture;
  set_log_level(LogLevel::Error);
  log_message(LogLevel::Warn, "below");
  log_message(LogLevel::Error, "at");
  const std::string out = capture.text();
  EXPECT_EQ(out.find("below"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] at"), std::string::npos);
}

}  // namespace
}  // namespace sperke
