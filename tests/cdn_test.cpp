#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cdn/cache.h"
#include "cdn/edge.h"
#include "cdn/origin.h"
#include "cdn/topology.h"
#include "geo/visibility.h"
#include "hmp/heatmap.h"
#include "media/chunk.h"
#include "media/video_model.h"
#include "net/chunk_source.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sperke::cdn {
namespace {

using net::ChunkId;
using net::TransferResult;
using net::TransferStatus;

// Shorthand for single-video AVC objects: the tests only need one axis.
ChunkId cid(std::int32_t tile, std::int32_t chunk = 0, std::int32_t quality = 0) {
  return ChunkId{.chunk = chunk, .tile = tile, .quality = quality};
}

net::LinkConfig link_config(const std::string& name, double kbps = 80'000.0) {
  net::LinkConfig config;
  config.name = name;
  config.bandwidth = net::BandwidthTrace::constant(kbps);
  config.rtt = sim::milliseconds(20);
  return config;
}

// ------------------------------------------------------------------ ChunkId

TEST(ChunkId, RoundTripsAvcAddresses) {
  const media::ChunkAddress avc{
      .key = {.tile = 5, .index = 7}, .encoding = media::Encoding::kAvc, .level = 3};
  const ChunkId id = net::to_chunk_id(avc);
  EXPECT_EQ(id.tile, 5);
  EXPECT_EQ(id.chunk, 7);
  EXPECT_EQ(id.quality, 3);
  EXPECT_EQ(id.layer, -1);
  EXPECT_FALSE(id.svc());
  EXPECT_EQ(id.level(), 3);
  EXPECT_EQ(net::to_chunk_address(id), avc);
}

TEST(ChunkId, RoundTripsSvcAddresses) {
  const media::ChunkAddress svc{
      .key = {.tile = 2, .index = 4}, .encoding = media::Encoding::kSvc, .level = 1};
  const ChunkId id = net::to_chunk_id(svc, /*video=*/9);
  EXPECT_EQ(id.video, 9);
  EXPECT_EQ(id.quality, 0);  // the layer IS the quality coordinate
  EXPECT_EQ(id.layer, 1);
  EXPECT_TRUE(id.svc());
  EXPECT_EQ(id.level(), 1);
  EXPECT_EQ(net::to_chunk_address(id), svc);
}

TEST(ChunkId, OrdersLexicographically) {
  EXPECT_LT(cid(0, 0), cid(1, 0));
  EXPECT_LT(cid(9, 0), cid(0, 1));  // chunk dominates tile
  EXPECT_LT(cid(3, 3, 0), cid(3, 3, 1));
  EXPECT_EQ(cid(3, 3, 1), cid(3, 3, 1));
  // AVC (layer -1) and SVC layer objects of the same rung never collide.
  ChunkId svc = cid(3, 3, 0);
  svc.layer = 1;
  EXPECT_NE(svc, cid(3, 3, 1));
}

// ----------------------------------------------------------------- EdgeCache

TEST(EdgeCache, ParsePolicyNames) {
  EXPECT_EQ(parse_cache_policy("lru"), CachePolicy::kLru);
  EXPECT_EQ(parse_cache_policy("lfu"), CachePolicy::kLfu);
  EXPECT_STREQ(to_string(CachePolicy::kLru), "lru");
  EXPECT_STREQ(to_string(CachePolicy::kLfu), "lfu");
  try {
    (void)parse_cache_policy("arc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("arc"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("valid names: lru, lfu"),
              std::string::npos);
  }
}

TEST(EdgeCache, RejectsNonPositiveCapacity) {
  EXPECT_THROW(EdgeCache({.capacity_bytes = 0}), std::invalid_argument);
  EXPECT_THROW(EdgeCache({.capacity_bytes = -1}), std::invalid_argument);
}

TEST(EdgeCache, LruGoldenEvictionSequence) {
  EdgeCache cache({.policy = CachePolicy::kLru, .capacity_bytes = 300});
  EXPECT_EQ(cache.insert(cid(0), 100), 0);
  EXPECT_EQ(cache.insert(cid(1), 100), 0);
  EXPECT_EQ(cache.insert(cid(2), 100), 0);
  EXPECT_EQ(cache.used_bytes(), 300);

  // Touching 0 makes 1 the least recently used.
  EXPECT_TRUE(cache.touch(cid(0)));
  EXPECT_EQ(cache.insert(cid(3), 100), 1);
  EXPECT_FALSE(cache.contains(cid(1)));
  EXPECT_EQ(cache.resident(), (std::vector<ChunkId>{cid(0), cid(2), cid(3)}));

  // A 150-byte object displaces the two least recent residents: 2, then 0.
  EXPECT_EQ(cache.insert(cid(4), 150), 2);
  EXPECT_EQ(cache.resident(), (std::vector<ChunkId>{cid(3), cid(4)}));
  EXPECT_EQ(cache.used_bytes(), 250);
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(EdgeCache, LfuGoldenEvictionSequence) {
  EdgeCache cache({.policy = CachePolicy::kLfu, .capacity_bytes = 300});
  (void)cache.insert(cid(0), 100);  // freq 1
  (void)cache.insert(cid(1), 100);  // freq 1
  (void)cache.insert(cid(2), 100);  // freq 1
  EXPECT_TRUE(cache.touch(cid(0)));  // freq 3 after the next touch
  EXPECT_TRUE(cache.touch(cid(0)));
  EXPECT_TRUE(cache.touch(cid(1)));  // freq 2

  // Least frequent wins eviction: 2 (freq 1).
  EXPECT_EQ(cache.insert(cid(3), 100), 1);
  EXPECT_FALSE(cache.contains(cid(2)));
  // Then the freshly inserted 3 (freq 1) is the least frequent again.
  EXPECT_EQ(cache.insert(cid(4), 100), 1);
  EXPECT_EQ(cache.resident(), (std::vector<ChunkId>{cid(0), cid(1), cid(4)}));
}

TEST(EdgeCache, LfuTiesBreakByLeastRecent) {
  EdgeCache cache({.policy = CachePolicy::kLfu, .capacity_bytes = 200});
  (void)cache.insert(cid(0), 100);
  (void)cache.insert(cid(1), 100);
  // Both at freq 1: the earlier-used (0) is the victim.
  EXPECT_EQ(cache.insert(cid(2), 100), 1);
  EXPECT_EQ(cache.resident(), (std::vector<ChunkId>{cid(1), cid(2)}));
}

TEST(EdgeCache, ReinsertCountsAsTouch) {
  EdgeCache cache({.policy = CachePolicy::kLru, .capacity_bytes = 300});
  (void)cache.insert(cid(0), 100);
  (void)cache.insert(cid(1), 100);
  EXPECT_EQ(cache.insert(cid(0), 100), 0);  // already resident: a touch
  EXPECT_EQ(cache.used_bytes(), 200);
  EXPECT_EQ(cache.size(), 2);
  // The re-insert refreshed 0's recency, so 1 is now the LRU victim.
  (void)cache.insert(cid(2), 100);
  EXPECT_EQ(cache.insert(cid(3), 100), 1);
  EXPECT_FALSE(cache.contains(cid(1)));
  EXPECT_TRUE(cache.contains(cid(0)));
}

TEST(EdgeCache, OversizedObjectIsNeverAdmitted) {
  EdgeCache cache({.policy = CachePolicy::kLru, .capacity_bytes = 300});
  (void)cache.insert(cid(0), 100);
  EXPECT_EQ(cache.insert(cid(9), 301), -1);
  // Nothing was evicted to make room for an object that can never fit.
  EXPECT_TRUE(cache.contains(cid(0)));
  EXPECT_EQ(cache.used_bytes(), 100);
  EXPECT_EQ(cache.evictions(), 0u);
}

// -------------------------------------------------------------------- Origin

TEST(Origin, CoalescesConcurrentFetchesIntoOneTransfer) {
  sim::Simulator simulator;
  net::Link backhaul(simulator, link_config("backhaul"));
  obs::Telemetry telemetry;
  Origin origin(backhaul, &telemetry);

  // The settle hook (the edge's cache-fill point) must fire before any
  // waiter; record the global firing order to prove it.
  std::vector<std::string> order;
  origin.set_on_settled([&](const ChunkId&, const TransferResult& r) {
    EXPECT_TRUE(r.completed());
    order.push_back("settle");
  });

  const ChunkId id = cid(3);
  std::vector<TransferResult> results(3);
  std::vector<int> fired(3, 0);
  for (int w = 0; w < 3; ++w) {
    origin.fetch(id, 100'000, 1.0, [&, w](const TransferResult& r) {
      ++fired[static_cast<std::size_t>(w)];
      results[static_cast<std::size_t>(w)] = r;
      order.push_back("waiter" + std::to_string(w));
    });
  }
  EXPECT_EQ(origin.transfers_started(), 1u);  // three fetches, one transfer
  EXPECT_EQ(origin.inflight(), 1);
  EXPECT_TRUE(origin.inflight_contains(id));

  simulator.run();
  EXPECT_EQ(origin.inflight(), 0);
  EXPECT_EQ(origin.egress_bytes(), 100'000);  // backhaul bytes counted once
  EXPECT_EQ(telemetry.metrics().counter("cdn.origin.egress_bytes").value(),
            100'000);
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(fired[static_cast<std::size_t>(w)], 1) << "waiter " << w;
    EXPECT_TRUE(results[static_cast<std::size_t>(w)].completed());
    EXPECT_EQ(results[static_cast<std::size_t>(w)].bytes_delivered, 100'000);
  }
  // Settle hook first, then waiters in join order.
  EXPECT_EQ(order, (std::vector<std::string>{"settle", "waiter0", "waiter1",
                                             "waiter2"}));
}

TEST(Origin, FaultedTransferFiresEveryWaiterExactlyOnce) {
  sim::Simulator simulator;
  net::LinkConfig config = link_config("backhaul");
  config.faults.outages.push_back({.start_s = 0.0, .duration_s = 5.0});
  net::Link backhaul(simulator, config);
  Origin origin(backhaul, nullptr);

  const ChunkId id = cid(1);
  std::vector<int> fired(2, 0);
  for (int w = 0; w < 2; ++w) {
    origin.fetch(id, 50'000, 1.0, [&, w](const TransferResult& r) {
      ++fired[static_cast<std::size_t>(w)];
      EXPECT_EQ(r.status, TransferStatus::kFailed);
      EXPECT_EQ(r.bytes_delivered, 0);
      // In-flight state is cleared before waiters fire, so a retry issued
      // from this callback starts a fresh transfer instead of joining the
      // transfer that just died.
      EXPECT_FALSE(origin.inflight_contains(id));
    });
  }
  EXPECT_EQ(origin.transfers_started(), 1u);
  simulator.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 1}));  // no double-fire
  EXPECT_EQ(origin.egress_bytes(), 0);

  // A retry after the outage window is a new transfer and completes.
  int completed = 0;
  origin.fetch(id, 50'000, 1.0, [&](const TransferResult& r) {
    EXPECT_TRUE(r.completed());
    ++completed;
  });
  EXPECT_EQ(origin.transfers_started(), 2u);
  simulator.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(origin.egress_bytes(), 50'000);
}

TEST(Origin, CancelDetachesOneWaiterOnly) {
  sim::Simulator simulator;
  net::Link backhaul(simulator, link_config("backhaul"));
  Origin origin(backhaul, nullptr);

  const ChunkId id = cid(6);
  TransferResult first{};
  TransferResult second{};
  int first_fired = 0;
  int second_fired = 0;
  const Origin::Ticket keep = origin.fetch(id, 80'000, 1.0,
                                           [&](const TransferResult& r) {
                                             first = r;
                                             ++first_fired;
                                           });
  const Origin::Ticket drop = origin.fetch(id, 80'000, 1.0,
                                           [&](const TransferResult& r) {
                                             second = r;
                                             ++second_fired;
                                           });

  // Cancelling fires the dropped waiter synchronously with kCancelled…
  EXPECT_TRUE(origin.cancel(drop));
  EXPECT_EQ(second_fired, 1);
  EXPECT_EQ(second.status, TransferStatus::kCancelled);
  EXPECT_EQ(second.bytes_delivered, 0);
  EXPECT_FALSE(origin.cancel(drop));  // already settled: fires nothing

  // …while the transfer keeps running for the remaining waiter.
  EXPECT_TRUE(origin.inflight_contains(id));
  simulator.run();
  EXPECT_EQ(first_fired, 1);
  EXPECT_TRUE(first.completed());
  EXPECT_EQ(second_fired, 1);
  EXPECT_EQ(origin.egress_bytes(), 80'000);
  EXPECT_FALSE(origin.cancel(keep));  // settled tickets cannot cancel
}

// ---------------------------------------------------------------------- Edge

struct EdgeHarness {
  sim::Simulator simulator;
  obs::Telemetry telemetry;
  net::Link backhaul;
  net::Link access;
  Edge edge;
  EdgeSource source;

  explicit EdgeHarness(std::int64_t capacity_bytes = 1 << 20,
                       CachePolicy policy = CachePolicy::kLru)
      : backhaul(simulator, link_config("backhaul")),
        access(simulator, link_config("access")),
        edge(backhaul, {.policy = policy, .capacity_bytes = capacity_bytes},
             &telemetry),
        source(access, edge) {}

  [[nodiscard]] std::int64_t counter(const char* name) {
    return telemetry.metrics().counter(name).value();
  }
};

TEST(EdgeSource, MissFillsCacheThenHitSkipsBackhaul) {
  EdgeHarness h;
  const ChunkId id = cid(2, 1);

  TransferResult miss{};
  h.source.fetch({.id = id, .bytes = 60'000}, [&](const TransferResult& r) {
    miss = r;
  });
  h.simulator.run();
  EXPECT_TRUE(miss.completed());
  EXPECT_EQ(miss.bytes_delivered, 60'000);
  EXPECT_TRUE(h.edge.cache().contains(id));
  EXPECT_EQ(h.edge.stats().misses, 1);
  EXPECT_EQ(h.edge.stats().hits, 0);
  EXPECT_EQ(h.edge.origin().egress_bytes(), 60'000);
  const sim::Time miss_done = miss.time;

  TransferResult hit{};
  h.source.fetch({.id = id, .bytes = 60'000}, [&](const TransferResult& r) {
    hit = r;
  });
  h.simulator.run();
  EXPECT_TRUE(hit.completed());
  EXPECT_EQ(h.edge.stats().hits, 1);
  // The hit never touched the backhaul…
  EXPECT_EQ(h.edge.origin().egress_bytes(), 60'000);
  // …and finished faster than the miss, which paid backhaul + access.
  EXPECT_LT(hit.time - miss_done, miss_done - sim::kTimeZero);

  EXPECT_EQ(h.counter("cdn.edge.hits"), 1);
  EXPECT_EQ(h.counter("cdn.edge.misses"), 1);
}

TEST(EdgeSource, ConcurrentMissesCoalesceOnTheBackhaul) {
  EdgeHarness h;
  const ChunkId id = cid(4);
  std::vector<TransferResult> results(2);
  for (int w = 0; w < 2; ++w) {
    h.source.fetch({.id = id, .bytes = 70'000}, [&, w](const TransferResult& r) {
      results[static_cast<std::size_t>(w)] = r;
    });
  }
  EXPECT_EQ(h.edge.stats().misses, 2);
  EXPECT_EQ(h.edge.stats().coalesced, 1);  // the second miss joined in flight
  EXPECT_EQ(h.edge.origin().transfers_started(), 1u);

  h.simulator.run();
  for (const TransferResult& r : results) {
    EXPECT_TRUE(r.completed());
    EXPECT_EQ(r.bytes_delivered, 70'000);  // each client got the full object
  }
  EXPECT_EQ(h.edge.origin().egress_bytes(), 70'000);  // backhaul paid once
  EXPECT_EQ(h.counter("cdn.edge.coalesced"), 1);
  EXPECT_EQ(h.counter("cdn.origin.egress_bytes"), 70'000);
}

TEST(EdgeSource, BackhaulFaultReachesClientAsFailure) {
  // A backhaul outage covers the first fetch: the miss fails upstream of
  // the access link and the client sees kFailed with zero bytes.
  sim::Simulator simulator;
  net::LinkConfig config = link_config("backhaul");
  config.faults.outages.push_back({.start_s = 0.0, .duration_s = 3.0});
  net::Link backhaul(simulator, config);
  net::Link access(simulator, link_config("access"));
  Edge edge(backhaul, {.capacity_bytes = 1 << 20}, nullptr);
  EdgeSource source(access, edge);

  TransferResult result{};
  int fired = 0;
  source.fetch({.id = cid(1), .bytes = 40'000}, [&](const TransferResult& r) {
    result = r;
    ++fired;
  });
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(result.status, TransferStatus::kFailed);
  EXPECT_EQ(result.bytes_delivered, 0);  // nothing reached the client
  EXPECT_FALSE(edge.cache().contains(cid(1)));
}

TEST(EdgeSource, CancelWhileWaitingOnOriginStillFillsCache) {
  EdgeHarness h;
  const ChunkId id = cid(8);
  TransferResult result{};
  int fired = 0;
  const net::FetchId fetch = h.source.fetch(
      {.id = id, .bytes = 90'000}, [&](const TransferResult& r) {
        result = r;
        ++fired;
      });

  EXPECT_TRUE(h.source.cancel(fetch));
  EXPECT_EQ(fired, 1);  // synchronous, exactly once
  EXPECT_EQ(result.status, TransferStatus::kCancelled);
  EXPECT_EQ(result.bytes_delivered, 0);
  EXPECT_FALSE(h.source.cancel(fetch));  // already settled

  // The backhaul transfer kept running: the cache still gets the object.
  h.simulator.run();
  EXPECT_TRUE(h.edge.cache().contains(id));
  EXPECT_EQ(fired, 1);
}

TEST(EdgeSource, CancelWhileServingAbortsTheAccessTransfer) {
  EdgeHarness h;
  const ChunkId id = cid(5);
  ASSERT_EQ(h.edge.cache().insert(id, 90'000), 0);  // pre-seed: fetch hits

  TransferResult result{};
  int fired = 0;
  const net::FetchId fetch = h.source.fetch(
      {.id = id, .bytes = 90'000}, [&](const TransferResult& r) {
        result = r;
        ++fired;
      });
  EXPECT_EQ(h.edge.stats().hits, 1);

  EXPECT_TRUE(h.source.cancel(fetch));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(result.status, TransferStatus::kCancelled);
  EXPECT_FALSE(h.source.cancel(fetch));
  h.simulator.run();
  EXPECT_EQ(fired, 1);
}

// ------------------------------------------------------------------- warming

media::VideoModelConfig tiny_video() {
  media::VideoModelConfig cfg;
  cfg.duration_s = 4.0;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 2;
  cfg.tile_cols = 3;
  cfg.seed = 17;
  return cfg;
}

// A crowd that overwhelmingly watched tile `hot` in every chunk.
hmp::ViewingHeatmap hot_tile_crowd(const media::VideoModel& video,
                                   geo::TileId hot) {
  hmp::ViewingHeatmap crowd(video.tile_count(), video.chunk_count());
  const std::vector<geo::TileId> visible = {hot};
  for (media::ChunkIndex chunk = 0; chunk < video.chunk_count(); ++chunk) {
    for (int views = 0; views < 50; ++views) crowd.add_view(chunk, visible);
  }
  return crowd;
}

TEST(EdgeWarm, PreloadsTheCrowdsFavouriteTiles) {
  sim::Simulator simulator;
  net::Link backhaul(simulator, link_config("backhaul"));
  obs::Telemetry telemetry;
  Edge edge(backhaul, {.capacity_bytes = 1LL << 30}, &telemetry);

  const media::VideoModel video(tiny_video());
  const hmp::ViewingHeatmap crowd = hot_tile_crowd(video, /*hot=*/4);
  const int warmed = edge.warm(video, crowd,
                               {.tiles_per_chunk = 2, .level = 1});
  // 2 tiles per chunk x 4 chunks, one AVC object each.
  EXPECT_EQ(warmed, 8);
  EXPECT_EQ(edge.stats().warmed, 8);
  EXPECT_EQ(telemetry.metrics().counter("cdn.edge.warmed").value(), 8);
  // The hot tile is resident for every chunk, at the requested rung.
  for (std::int32_t chunk = 0; chunk < 4; ++chunk) {
    EXPECT_TRUE(edge.cache().contains(cid(4, chunk, 1))) << "chunk " << chunk;
  }
  EXPECT_EQ(edge.cache().evictions(), 0u);  // warming never evicts
}

TEST(EdgeWarm, IsDeterministicAcrossEdges) {
  const media::VideoModel video(tiny_video());
  const hmp::ViewingHeatmap crowd = hot_tile_crowd(video, /*hot=*/1);
  sim::Simulator simulator;
  net::Link backhaul(simulator, link_config("backhaul"));

  Edge a(backhaul, {.capacity_bytes = 200'000}, nullptr);
  Edge b(backhaul, {.capacity_bytes = 200'000}, nullptr);
  const WarmSpec spec{.tiles_per_chunk = 3, .level = 2};
  EXPECT_EQ(a.warm(video, crowd, spec), b.warm(video, crowd, spec));
  EXPECT_EQ(a.cache().resident(), b.cache().resident());
  EXPECT_EQ(a.cache().used_bytes(), b.cache().used_bytes());
}

TEST(EdgeWarm, StopsAtTheByteBudgetWithoutEvicting) {
  const media::VideoModel video(tiny_video());
  const hmp::ViewingHeatmap crowd = hot_tile_crowd(video, /*hot=*/0);
  sim::Simulator simulator;
  net::Link backhaul(simulator, link_config("backhaul"));

  // A budget big enough for roughly one object: warming stops at the first
  // non-fit instead of churning what it just preloaded.
  const std::int64_t one_object =
      video.size_bytes({.key = {.tile = 0, .index = 0},
                        .encoding = media::Encoding::kAvc,
                        .level = 0});
  Edge edge(backhaul, {.capacity_bytes = one_object}, nullptr);
  const int warmed = edge.warm(video, crowd, {.tiles_per_chunk = 6});
  EXPECT_GE(warmed, 1);
  EXPECT_EQ(edge.cache().evictions(), 0u);
  EXPECT_LE(edge.cache().used_bytes(), edge.cache().capacity_bytes());
  // The single highest-probability object made it in.
  EXPECT_TRUE(edge.cache().contains(cid(0, 0, 0)));
}

TEST(EdgeWarm, SvcWarmsThePlayableLayerPrefix) {
  const media::VideoModel video(tiny_video());
  const hmp::ViewingHeatmap crowd = hot_tile_crowd(video, /*hot=*/3);
  sim::Simulator simulator;
  net::Link backhaul(simulator, link_config("backhaul"));
  Edge edge(backhaul, {.capacity_bytes = 1LL << 30}, nullptr);

  (void)edge.warm(video, crowd,
                  {.tiles_per_chunk = 1,
                   .encoding = media::Encoding::kSvc,
                   .level = 2});
  // Playing SVC layer 2 needs layers 0..2 resident, not just layer 2.
  for (std::int32_t layer = 0; layer <= 2; ++layer) {
    ChunkId id = cid(3, 0, 0);
    id.layer = layer;
    EXPECT_TRUE(edge.cache().contains(id)) << "layer " << layer;
  }
}

// ------------------------------------------------------------------ topology

TEST(TopologyValidate, ErrorsListTheValidFieldNames) {
  const auto expect_fields = [](TopologySpec spec, bool has_crowd,
                                const std::string& needle) {
    try {
      validate(spec, /*sessions_per_link=*/4, has_crowd);
      FAIL() << "expected std::invalid_argument for " << needle;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      EXPECT_NE(what.find("valid fields: sessions_per_edge, backhaul, "
                          "backhaul_for_edge, cache_policy, "
                          "cache_capacity_bytes, warm_tiles_per_chunk, "
                          "warm_encoding, warm_level"),
                std::string::npos)
          << what;
    }
  };

  TopologySpec negative;
  negative.sessions_per_edge = -1;
  expect_fields(negative, false, "sessions_per_edge");

  TopologySpec indivisible;
  indivisible.sessions_per_edge = 6;  // not a multiple of 4
  expect_fields(indivisible, false, "multiple of sessions_per_link");

  TopologySpec no_budget;
  no_budget.sessions_per_edge = 8;
  no_budget.cache_capacity_bytes = 0;
  expect_fields(no_budget, false, "cache_capacity_bytes");

  TopologySpec bad_policy;
  bad_policy.sessions_per_edge = 8;
  bad_policy.cache_policy = "arc";
  expect_fields(bad_policy, false, "valid names: lru, lfu");

  TopologySpec warm_without_crowd;
  warm_without_crowd.sessions_per_edge = 8;
  warm_without_crowd.warm_tiles_per_chunk = 2;
  expect_fields(warm_without_crowd, false, "crowd heatmap");

  TopologySpec bad_level;
  bad_level.sessions_per_edge = 8;
  bad_level.warm_tiles_per_chunk = 2;
  bad_level.warm_level = -1;
  expect_fields(bad_level, true, "warm_level");

  // Well-formed sections pass: disabled, enabled, enabled + warming.
  EXPECT_NO_THROW(validate(TopologySpec{}, 4, false));
  TopologySpec enabled;
  enabled.sessions_per_edge = 8;
  EXPECT_NO_THROW(validate(enabled, 4, false));
  enabled.warm_tiles_per_chunk = 2;
  EXPECT_NO_THROW(validate(enabled, 4, true));
}

TEST(Topology, DisabledTierFetchesOverDirectLinkSources) {
  sim::Simulator simulator;
  TopologySpec spec;  // disabled
  Topology topology(simulator, spec, nullptr, nullptr, nullptr);
  net::ChunkSource& source = topology.add_group(-1, link_config("access"));
  EXPECT_EQ(topology.access_link_count(), 1);
  EXPECT_EQ(topology.edge_count(), 0);  // no edge, no backhaul

  TransferResult result{};
  source.fetch({.id = cid(0), .bytes = 10'000}, [&](const TransferResult& r) {
    result = r;
  });
  simulator.run();
  EXPECT_TRUE(result.completed());
  EXPECT_EQ(result.bytes_delivered, 10'000);
}

TEST(Topology, GroupsOfOneEdgeShareItsCache) {
  sim::Simulator simulator;
  obs::Telemetry telemetry;
  TopologySpec spec;
  spec.sessions_per_edge = 8;
  spec.backhaul = link_config("backhaul");
  spec.cache_capacity_bytes = 1 << 20;
  Topology topology(simulator, spec, &telemetry, nullptr, nullptr);

  net::ChunkSource& group0 = topology.add_group(0, link_config("access0"));
  net::ChunkSource& group1 = topology.add_group(0, link_config("access1"));
  EXPECT_EQ(topology.access_link_count(), 2);
  EXPECT_EQ(topology.edge_count(), 1);  // one shared edge, built lazily

  // Group 0's miss fills the shared cache; group 1's fetch of the same
  // object is a pure hit — that is exactly how sessions share an edge.
  const ChunkId id = cid(7, 2);
  TransferResult first{};
  group0.fetch({.id = id, .bytes = 30'000}, [&](const TransferResult& r) {
    first = r;
  });
  simulator.run();
  TransferResult second{};
  group1.fetch({.id = id, .bytes = 30'000}, [&](const TransferResult& r) {
    second = r;
  });
  simulator.run();

  EXPECT_TRUE(first.completed());
  EXPECT_TRUE(second.completed());
  const EdgeStats& stats = topology.edge(0).stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(telemetry.metrics().counter("cdn.edge.hits").value(), 1);
  EXPECT_EQ(telemetry.metrics().counter("cdn.origin.egress_bytes").value(),
            30'000);
}

TEST(Topology, DistinctEdgeIdsGetDistinctCaches) {
  sim::Simulator simulator;
  TopologySpec spec;
  spec.sessions_per_edge = 4;
  spec.backhaul = link_config("backhaul");
  Topology topology(simulator, spec, nullptr, nullptr, nullptr);
  net::ChunkSource& edge0 = topology.add_group(0, link_config("a0"));
  net::ChunkSource& edge1 = topology.add_group(1, link_config("a1"));
  EXPECT_EQ(topology.edge_count(), 2);

  const ChunkId id = cid(1);
  TransferResult r0{};
  TransferResult r1{};
  edge0.fetch({.id = id, .bytes = 20'000}, [&](const TransferResult& r) { r0 = r; });
  simulator.run();
  edge1.fetch({.id = id, .bytes = 20'000}, [&](const TransferResult& r) { r1 = r; });
  simulator.run();
  EXPECT_TRUE(r0.completed());
  EXPECT_TRUE(r1.completed());
  // No sharing across edges: both were misses against their own cache.
  EXPECT_EQ(topology.edge(0).stats().misses, 1);
  EXPECT_EQ(topology.edge(1).stats().misses, 1);
  EXPECT_EQ(topology.edge(1).stats().hits, 0);
}

}  // namespace
}  // namespace sperke::cdn
