#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/bandwidth_trace.h"
#include "net/link.h"
#include "net/throughput_estimator.h"
#include "sim/simulator.h"

namespace sperke::net {
namespace {

using sim::seconds;
using sim::Time;

TEST(BandwidthTrace, ConstantHoldsForever) {
  const auto trace = BandwidthTrace::constant(5000.0);
  EXPECT_DOUBLE_EQ(trace.kbps_at(sim::kTimeZero), 5000.0);
  EXPECT_DOUBLE_EQ(trace.kbps_at(seconds(1e6)), 5000.0);
  EXPECT_FALSE(trace.next_change_after(sim::kTimeZero).has_value());
}

TEST(BandwidthTrace, StepsSelectCorrectSegment) {
  const auto trace = BandwidthTrace::steps({{0.0, 1000.0}, {10.0, 2000.0}, {20.0, 500.0}});
  EXPECT_DOUBLE_EQ(trace.kbps_at(seconds(5.0)), 1000.0);
  EXPECT_DOUBLE_EQ(trace.kbps_at(seconds(10.0)), 2000.0);
  EXPECT_DOUBLE_EQ(trace.kbps_at(seconds(15.0)), 2000.0);
  EXPECT_DOUBLE_EQ(trace.kbps_at(seconds(25.0)), 500.0);
}

TEST(BandwidthTrace, NextChangeAfter) {
  const auto trace = BandwidthTrace::steps({{0.0, 1000.0}, {10.0, 2000.0}});
  EXPECT_EQ(trace.next_change_after(seconds(0.0)), seconds(10.0));
  EXPECT_EQ(trace.next_change_after(seconds(9.9)), seconds(10.0));
  EXPECT_FALSE(trace.next_change_after(seconds(10.0)).has_value());
}

TEST(BandwidthTrace, RejectsMalformedSegments) {
  EXPECT_THROW(BandwidthTrace({}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({{seconds(1.0), 100.0}}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({{sim::kTimeZero, -5.0}}), std::invalid_argument);
  EXPECT_THROW(
      BandwidthTrace({{sim::kTimeZero, 5.0}, {sim::kTimeZero, 6.0}}),
      std::invalid_argument);
}

TEST(BandwidthTrace, AverageKbpsWeighted) {
  const auto trace = BandwidthTrace::steps({{0.0, 1000.0}, {5.0, 3000.0}});
  EXPECT_NEAR(trace.average_kbps(seconds(10.0)), 2000.0, 1e-9);
  EXPECT_NEAR(trace.average_kbps(seconds(5.0)), 1000.0, 1e-9);
}

TEST(BandwidthTrace, RandomWalkStaysInBounds) {
  const auto trace =
      BandwidthTrace::random_walk(5000.0, 0.3, 1.0, 120.0, 7, 1000.0, 10000.0);
  for (const auto& [t, kbps] : trace.segments()) {
    EXPECT_GE(kbps, 1000.0);
    EXPECT_LE(kbps, 10000.0);
  }
  EXPECT_GT(trace.segments().size(), 100u);
}

TEST(BandwidthTrace, RandomWalkDeterministicPerSeed) {
  const auto a = BandwidthTrace::random_walk(5000.0, 0.3, 1.0, 60.0, 7);
  const auto b = BandwidthTrace::random_walk(5000.0, 0.3, 1.0, 60.0, 7);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.segments()[i].second, b.segments()[i].second);
  }
}

TEST(BandwidthTrace, MarkovAlternatesStates) {
  const auto trace = BandwidthTrace::markov_two_state(8000.0, 500.0, 5.0, 2.0, 300.0, 3);
  bool saw_good = false, saw_bad = false;
  for (const auto& [t, kbps] : trace.segments()) {
    saw_good |= (kbps == 8000.0);
    saw_bad |= (kbps == 500.0);
  }
  EXPECT_TRUE(saw_good);
  EXPECT_TRUE(saw_bad);
}

TEST(BandwidthTrace, CsvRoundTrip) {
  const auto trace = BandwidthTrace::steps({{0.0, 1234.5}, {3.0, 678.9}});
  const auto restored = BandwidthTrace::from_csv(trace.to_csv());
  EXPECT_DOUBLE_EQ(restored.kbps_at(seconds(1.0)), 1234.5);
  EXPECT_DOUBLE_EQ(restored.kbps_at(seconds(4.0)), 678.9);
}

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
};

TEST_F(LinkTest, SingleTransferTakesBandwidthPlusRtt) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);  // 1 MB/s
  cfg.rtt = sim::milliseconds(100);
  Link link(simulator, cfg);
  std::optional<Time> done;
  link.start_transfer(1'000'000, [&](const TransferResult& r) { done = r.time; });
  simulator.run();
  ASSERT_TRUE(done.has_value());
  // 1 MB at 1 MB/s = 1 s + 0.1 s RTT warmup.
  EXPECT_NEAR(sim::to_seconds(*done), 1.1, 0.01);
  EXPECT_EQ(link.bytes_delivered(), 1'000'000);
}

TEST_F(LinkTest, TwoTransfersShareFairly) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<Time> t1, t2;
  link.start_transfer(1'000'000, [&](const TransferResult& r) { t1 = r.time; });
  link.start_transfer(1'000'000, [&](const TransferResult& r) { t2 = r.time; });
  simulator.run();
  ASSERT_TRUE(t1 && t2);
  // Both share 1 MB/s -> each runs at 0.5 MB/s -> both done at ~2 s.
  EXPECT_NEAR(sim::to_seconds(*t1), 2.0, 0.02);
  EXPECT_NEAR(sim::to_seconds(*t2), 2.0, 0.02);
}

TEST_F(LinkTest, ShorterTransferFinishesFirstAndFreesCapacity) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<Time> small, big;
  link.start_transfer(500'000, [&](const TransferResult& r) { small = r.time; });
  link.start_transfer(1'500'000, [&](const TransferResult& r) { big = r.time; });
  simulator.run();
  ASSERT_TRUE(small && big);
  // Shared until small is done at t=1s (0.5MB at 0.5MB/s); big then has
  // 1.0 MB left at full 1 MB/s -> finishes at 2 s.
  EXPECT_NEAR(sim::to_seconds(*small), 1.0, 0.02);
  EXPECT_NEAR(sim::to_seconds(*big), 2.0, 0.02);
}

TEST_F(LinkTest, BandwidthStepChangesRate) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::steps({{0.0, 8000.0}, {1.0, 4000.0}});
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<Time> done;
  link.start_transfer(1'500'000, [&](const TransferResult& r) { done = r.time; });
  simulator.run();
  ASSERT_TRUE(done);
  // 1 MB in first second, remaining 0.5 MB at 0.5 MB/s -> 2 s total.
  EXPECT_NEAR(sim::to_seconds(*done), 2.0, 0.02);
}

TEST_F(LinkTest, ZeroBandwidthStallsUntilRecovery) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::steps({{0.0, 0.0}, {5.0, 8000.0}});
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<Time> done;
  link.start_transfer(1'000'000, [&](const TransferResult& r) { done = r.time; });
  simulator.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(sim::to_seconds(*done), 6.0, 0.02);
}

TEST_F(LinkTest, CancelStopsTransfer) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<TransferResult> result;
  const TransferId id =
      link.start_transfer(1'000'000, [&](const TransferResult& r) { result = r; });
  simulator.schedule_at(seconds(0.5), [&] { EXPECT_TRUE(link.cancel(id)); });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, TransferStatus::kCancelled);
  EXPECT_FALSE(link.cancel(id));
  // Roughly half the bytes were delivered before the cancel.
  EXPECT_NEAR(static_cast<double>(link.bytes_delivered()), 500'000.0, 20'000.0);
  EXPECT_NEAR(static_cast<double>(result->bytes_delivered), 500'000.0, 20'000.0);
}

TEST_F(LinkTest, CancelAfterCompletionReturnsFalseAndDoesNotDoubleFire) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  int fires = 0;
  const TransferId id =
      link.start_transfer(100'000, [&](const TransferResult&) { ++fires; });
  simulator.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(link.cancel(id));
  EXPECT_EQ(fires, 1);
}

TEST_F(LinkTest, CancelAfterFailureReturnsFalseAndDoesNotDoubleFire) {
  // Regression: cancelling a transfer that an outage already failed must
  // return false and must not fire the callback a second time.
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::Duration{0};
  cfg.faults.outages = {{.start_s = 0.5, .duration_s = 1.0}};
  Link link(simulator, cfg);
  int fires = 0;
  std::optional<TransferResult> result;
  const TransferId id = link.start_transfer(
      2'000'000, [&](const TransferResult& r) {
        ++fires;
        result = r;
      });
  simulator.run_until(seconds(0.75));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, TransferStatus::kFailed);
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(link.cancel(id));
  EXPECT_EQ(fires, 1);
}

TEST_F(LinkTest, OutageFailsInFlightTransfersAtWindowStart) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);  // 1 MB/s
  cfg.rtt = sim::Duration{0};
  cfg.faults.outages = {{.start_s = 1.0, .duration_s = 2.0}};
  Link link(simulator, cfg);
  std::optional<TransferResult> result;
  link.start_transfer(2'000'000, [&](const TransferResult& r) { result = r; });
  simulator.run_until(seconds(2.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, TransferStatus::kFailed);
  EXPECT_NEAR(sim::to_seconds(result->time), 1.0, 0.01);
  // ~1 MB flowed before the lights went out; partial progress is reported.
  EXPECT_NEAR(static_cast<double>(result->bytes_delivered), 1'000'000.0, 20'000.0);
  EXPECT_TRUE(link.in_outage());
  EXPECT_EQ(link.active_transfers(), 0);
}

TEST_F(LinkTest, TransferStartedDuringOutageFailsAtActivation) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::milliseconds(100);
  cfg.faults.outages = {{.start_s = 1.0, .duration_s = 2.0}};
  Link link(simulator, cfg);
  std::optional<TransferResult> result;
  simulator.schedule_at(seconds(1.5), [&] {
    link.start_transfer(1'000'000, [&](const TransferResult& r) { result = r; });
  });
  simulator.run_until(seconds(2.0));
  // Fails one RTT after the attempt (the request times out into the void).
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, TransferStatus::kFailed);
  EXPECT_NEAR(sim::to_seconds(result->time), 1.6, 0.01);
  EXPECT_EQ(result->bytes_delivered, 0);
}

TEST_F(LinkTest, TransferCompletesAfterOutageEnds) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);  // 1 MB/s
  cfg.rtt = sim::Duration{0};
  cfg.faults.outages = {{.start_s = 0.0, .duration_s = 2.0}};
  Link link(simulator, cfg);
  std::optional<TransferResult> result;
  // Started after the outage is over: completes normally.
  simulator.schedule_at(seconds(2.5), [&] {
    link.start_transfer(1'000'000, [&](const TransferResult& r) { result = r; });
  });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, TransferStatus::kCompleted);
  EXPECT_NEAR(sim::to_seconds(result->time), 3.5, 0.02);
  EXPECT_NEAR(link.outage_seconds(), 2.0, 1e-9);
}

TEST_F(LinkTest, CapacityCollapseSlowsTransfer) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);  // 1 MB/s
  cfg.rtt = sim::Duration{0};
  // Half capacity in [1s, 3s): 1 MB in the first second, then 0.5 MB/s.
  cfg.faults.capacity_collapses = {{.start_s = 1.0, .duration_s = 2.0, .factor = 0.5}};
  Link link(simulator, cfg);
  std::optional<TransferResult> result;
  link.start_transfer(2'000'000, [&](const TransferResult& r) { result = r; });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, TransferStatus::kCompleted);
  EXPECT_NEAR(sim::to_seconds(result->time), 3.0, 0.03);
}

TEST_F(LinkTest, RttSpikeScalesEffectiveRtt) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::milliseconds(100);
  cfg.faults.rtt_spikes = {{.start_s = 0.0, .duration_s = 5.0, .factor = 4.0}};
  Link link(simulator, cfg);
  EXPECT_EQ(link.rtt(), sim::milliseconds(400));
  std::optional<TransferResult> result;
  link.start_transfer(1'000'000, [&](const TransferResult& r) { result = r; });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  // 0.4 s spiked warmup + 1 s of data.
  EXPECT_NEAR(sim::to_seconds(result->time), 1.4, 0.02);
  // Outside the spike window the configured RTT is back.
  EXPECT_EQ(link.rtt(), sim::milliseconds(100));
}

TEST_F(LinkTest, PerTransferFailuresAreSeededAndDeterministic) {
  const auto run_once = [](std::uint64_t seed) {
    sim::Simulator simulator;
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::constant(8000.0);
    cfg.rtt = sim::Duration{0};
    cfg.faults.transfer_failure_prob = 0.5;
    cfg.faults.seed = seed;
    Link link(simulator, cfg);
    std::vector<TransferStatus> statuses;
    for (int i = 0; i < 32; ++i) {
      link.start_transfer(100'000, [&statuses](const TransferResult& r) {
        statuses.push_back(r.status);
      });
    }
    simulator.run();
    return statuses;
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  const auto c = run_once(8);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);  // same seed, same failure stream
  EXPECT_NE(a, c);  // different seed, different stream
  EXPECT_TRUE(std::count(a.begin(), a.end(), TransferStatus::kFailed) > 0);
  EXPECT_TRUE(std::count(a.begin(), a.end(), TransferStatus::kCompleted) > 0);
}

TEST_F(LinkTest, FaultPlanValidation) {
  FaultPlan bad;
  bad.outages = {{.start_s = -1.0, .duration_s = 1.0}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = {};
  bad.capacity_collapses = {{.start_s = 0.0, .duration_s = 1.0, .factor = 0.0}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = {};
  bad.rtt_spikes = {{.start_s = 0.0, .duration_s = 1.0, .factor = 0.5}};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = {};
  bad.transfer_failure_prob = 1.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  LinkConfig cfg;
  cfg.faults.outages = {{.start_s = 0.0, .duration_s = 0.0}};
  EXPECT_THROW(Link(simulator, cfg), std::invalid_argument);
}

TEST_F(LinkTest, WeightedTransfersShareProportionally) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);  // 1 MB/s
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<Time> heavy, light;
  // Weight 3:1 — the heavy transfer runs at 750 KB/s, the light at 250 KB/s.
  link.start_transfer(750'000, [&](const TransferResult& r) { heavy = r.time; }, 3.0);
  link.start_transfer(750'000, [&](const TransferResult& r) { light = r.time; }, 1.0);
  simulator.run();
  ASSERT_TRUE(heavy && light);
  // Heavy: 750 KB at 750 KB/s = 1 s. Light: 250 KB in the first second,
  // then the full 1 MB/s -> 1 + 0.5 = 1.5 s.
  EXPECT_NEAR(sim::to_seconds(*heavy), 1.0, 0.02);
  EXPECT_NEAR(sim::to_seconds(*light), 1.5, 0.02);
}

TEST_F(LinkTest, WeightedShareRespectsMathisCap) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::milliseconds(50);
  cfg.loss_rate = 0.01;  // Mathis cap ~2.85 Mbps per transfer
  Link link(simulator, cfg);
  std::optional<Time> heavy, light;
  // Weight 10:1 — the heavy transfer would claim ~7.3 Mbps but is capped,
  // so the light one picks up the slack.
  link.start_transfer(1'000'000, [&](const TransferResult& r) { heavy = r.time; }, 10.0);
  link.start_transfer(1'000'000, [&](const TransferResult& r) { light = r.time; }, 1.0);
  simulator.run();
  ASSERT_TRUE(heavy && light);
  const double cap_kbps = link.mathis_cap_kbps();
  // Both run at ~the cap (8000 > 2*cap): completion ~ 8 Mbit / cap.
  const double expect_s = 8000.0 / cap_kbps + 0.05;
  EXPECT_NEAR(sim::to_seconds(*heavy), expect_s, expect_s * 0.05);
  EXPECT_NEAR(sim::to_seconds(*light), expect_s, expect_s * 0.05);
}

TEST_F(LinkTest, RejectsNonPositiveWeight) {
  Link link(simulator, LinkConfig{});
  EXPECT_THROW((void)link.start_transfer(1000, nullptr, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)link.start_transfer(1000, nullptr, -1.0),
               std::invalid_argument);
}

TEST_F(LinkTest, MathisCapLimitsLossyLink) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(100'000.0);
  cfg.rtt = sim::milliseconds(50);
  cfg.loss_rate = 0.01;  // cap ~= 1.22*1460*8/(0.05*0.1) bps ~= 2.85 Mbps
  Link link(simulator, cfg);
  const double cap = link.mathis_cap_kbps();
  EXPECT_NEAR(cap, 1.22 * 1460.0 * 8.0 / (0.05 * 0.1) / 1000.0, 1.0);
  std::optional<Time> done;
  link.start_transfer(1'000'000, [&](const TransferResult& r) { done = r.time; });
  simulator.run();
  ASSERT_TRUE(done);
  const double expected_s = 1'000'000.0 * 8.0 / (cap * 1000.0) + 0.05;
  EXPECT_NEAR(sim::to_seconds(*done), expected_s, expected_s * 0.02);
}

TEST_F(LinkTest, LosslessLinkHasInfiniteCap) {
  LinkConfig cfg;
  Link link(simulator, cfg);
  EXPECT_TRUE(std::isinf(link.mathis_cap_kbps()));
}

TEST_F(LinkTest, RejectsInvalidConfigAndTransfers) {
  LinkConfig bad;
  bad.loss_rate = 1.0;
  EXPECT_THROW(Link(simulator, bad), std::invalid_argument);
  Link link(simulator, LinkConfig{});
  EXPECT_THROW((void)link.start_transfer(0, nullptr), std::invalid_argument);
}

TEST_F(LinkTest, CompletionCallbackCanStartNewTransfer) {
  LinkConfig cfg;
  cfg.bandwidth = BandwidthTrace::constant(8000.0);
  cfg.rtt = sim::Duration{0};
  Link link(simulator, cfg);
  std::optional<Time> second_done;
  link.start_transfer(1'000'000, [&](const TransferResult&) {
    link.start_transfer(1'000'000,
                        [&](const TransferResult& r) { second_done = r.time; });
  });
  simulator.run();
  ASSERT_TRUE(second_done);
  EXPECT_NEAR(sim::to_seconds(*second_done), 2.0, 0.02);
}

TEST_F(LinkTest, ActiveTransfersCountsWarmupSeparately) {
  LinkConfig cfg;
  cfg.rtt = sim::milliseconds(100);
  Link link(simulator, cfg);
  link.start_transfer(1'000'000, [](const TransferResult&) {});
  EXPECT_EQ(link.active_transfers(), 0);  // still in RTT warmup
  simulator.run_until(seconds(0.2));
  EXPECT_EQ(link.active_transfers(), 1);
}

TEST(ThroughputEstimator, EwmaConvergesToSteadyRate) {
  EwmaEstimator est(0.5);
  EXPECT_DOUBLE_EQ(est.estimate_kbps(), 0.0);
  for (int i = 0; i < 20; ++i) est.record(125'000, seconds(1.0));  // 1000 kbps
  EXPECT_NEAR(est.estimate_kbps(), 1000.0, 1.0);
}

TEST(ThroughputEstimator, EwmaWeighsRecentSamples) {
  EwmaEstimator est(0.5);
  est.record(125'000, seconds(1.0));   // 1000 kbps
  est.record(250'000, seconds(1.0));   // 2000 kbps
  EXPECT_NEAR(est.estimate_kbps(), 1500.0, 1.0);
}

TEST(ThroughputEstimator, HarmonicMeanPenalizesDips) {
  HarmonicMeanEstimator est(5);
  est.record(125'000, seconds(1.0));  // 1000 kbps
  est.record(12'500, seconds(1.0));   // 100 kbps
  // Harmonic mean of {1000, 100} = 2/(1/1000 + 1/100) ~= 181.8 < arithmetic 550.
  EXPECT_NEAR(est.estimate_kbps(), 181.8, 1.0);
}

TEST(ThroughputEstimator, HarmonicWindowSlides) {
  HarmonicMeanEstimator est(2);
  est.record(12'500, seconds(1.0));    // 100 kbps, will be evicted
  est.record(125'000, seconds(1.0));   // 1000
  est.record(125'000, seconds(1.0));   // 1000
  EXPECT_NEAR(est.estimate_kbps(), 1000.0, 1.0);
}

TEST(ThroughputEstimator, IgnoresDegenerateSamples) {
  EwmaEstimator est;
  est.record(0, seconds(1.0));
  est.record(1000, sim::Duration{0});
  EXPECT_DOUBLE_EQ(est.estimate_kbps(), 0.0);
}

TEST(ThroughputEstimator, FactoryMakesBothKinds) {
  EXPECT_EQ(make_estimator("ewma")->name(), "ewma");
  EXPECT_EQ(make_estimator("harmonic")->name(), "harmonic");
  EXPECT_THROW((void)make_estimator("oracle"), std::invalid_argument);
}

}  // namespace
}  // namespace sperke::net
