#include <gtest/gtest.h>

#include <memory>

#include "media/content_store.h"
#include "media/manifest.h"
#include "media/mpd.h"
#include "media/quality_ladder.h"
#include "media/video_model.h"

namespace sperke::media {
namespace {

VideoModelConfig small_config() {
  VideoModelConfig cfg;
  cfg.duration_s = 10.0;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 2;
  cfg.tile_cols = 4;
  cfg.seed = 99;
  return cfg;
}

TEST(QualityLadder, RejectsBadLadders) {
  EXPECT_THROW(QualityLadder({}), std::invalid_argument);
  EXPECT_THROW(QualityLadder({1000.0, 1000.0}), std::invalid_argument);
  EXPECT_THROW(QualityLadder({1000.0, 500.0}), std::invalid_argument);
  EXPECT_THROW(QualityLadder({-1.0}), std::invalid_argument);
}

TEST(QualityLadder, UtilityNormalizedAndMonotone) {
  const auto ladder = QualityLadder::default_ladder();
  EXPECT_DOUBLE_EQ(ladder.utility(0), 0.0);
  EXPECT_DOUBLE_EQ(ladder.utility(ladder.max_level()), 1.0);
  for (QualityLevel q = 1; q < ladder.levels(); ++q) {
    EXPECT_GT(ladder.utility(q), ladder.utility(q - 1));
  }
}

TEST(QualityLadder, LevelForKbps) {
  const QualityLadder ladder({1000.0, 2000.0, 4000.0});
  EXPECT_EQ(ladder.level_for_kbps(500.0), 0);   // below base: still level 0
  EXPECT_EQ(ladder.level_for_kbps(1000.0), 0);
  EXPECT_EQ(ladder.level_for_kbps(2500.0), 1);
  EXPECT_EQ(ladder.level_for_kbps(9999.0), 2);
}

TEST(QualityLadder, BadLevelThrows) {
  const auto ladder = QualityLadder::default_ladder();
  EXPECT_THROW((void)ladder.panorama_kbps(-1), std::out_of_range);
  EXPECT_THROW((void)ladder.utility(ladder.levels()), std::out_of_range);
}

TEST(VideoModel, ChunkCountAndTimes) {
  const VideoModel vm(small_config());
  EXPECT_EQ(vm.chunk_count(), 10);
  EXPECT_EQ(vm.chunk_start_time(3), sim::seconds(3.0));
  EXPECT_EQ(vm.chunk_at_time(sim::seconds(3.5)), 3);
  EXPECT_EQ(vm.chunk_at_time(sim::seconds(99.0)), 9);  // clamped
}

TEST(VideoModel, RejectsBadConfig) {
  auto cfg = small_config();
  cfg.duration_s = 0.0;
  EXPECT_THROW((void)VideoModel(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.svc_overhead = -0.1;
  EXPECT_THROW((void)VideoModel(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.complexity_rho = 1.0;
  EXPECT_THROW((void)VideoModel(cfg), std::invalid_argument);
}

TEST(VideoModel, TileSharesSumToOne) {
  const VideoModel vm(small_config());
  double sum = 0.0;
  for (double s : vm.tile_shares()) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VideoModel, SizesIncreaseWithQuality) {
  const VideoModel vm(small_config());
  const ChunkKey key{0, 0};
  for (QualityLevel q = 1; q < vm.ladder().levels(); ++q) {
    EXPECT_GT(vm.avc_size_bytes(q, key), vm.avc_size_bytes(q - 1, key));
  }
}

TEST(VideoModel, PanoramaBytesMatchLadderBitrate) {
  // Summing all tiles at one quality for one chunk should be close to the
  // ladder bitrate x chunk duration (complexity averages to ~1 over cells).
  auto cfg = small_config();
  cfg.complexity_sigma = 0.0;  // deterministic: exact match expected
  const VideoModel vm(cfg);
  const QualityLevel q = 2;
  std::int64_t total = 0;
  for (geo::TileId tile = 0; tile < vm.tile_count(); ++tile) {
    total += vm.avc_size_bytes(q, {tile, 0});
  }
  const double expected = vm.ladder().panorama_kbps(q) * 1000.0 / 8.0;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.01);
}

TEST(VideoModel, SvcLayersSumToCumulative) {
  const VideoModel vm(small_config());
  for (geo::TileId tile = 0; tile < vm.tile_count(); ++tile) {
    const ChunkKey key{tile, 2};
    std::int64_t layered = 0;
    for (LayerIndex l = 0; l <= 3; ++l) {
      layered += vm.svc_layer_size_bytes(l, key);
    }
    EXPECT_EQ(layered, vm.svc_cumulative_size_bytes(3, key));
  }
}

TEST(VideoModel, SvcCarriesConfiguredOverhead) {
  auto cfg = small_config();
  cfg.svc_overhead = 0.2;
  const VideoModel vm(cfg);
  const ChunkKey key{1, 1};
  const auto avc = vm.avc_size_bytes(4, key);
  const auto svc = vm.svc_cumulative_size_bytes(4, key);
  EXPECT_NEAR(static_cast<double>(svc) / static_cast<double>(avc), 1.2, 0.01);
}

TEST(VideoModel, SvcLayerSizesArePositive) {
  const VideoModel vm(small_config());
  for (LayerIndex l = 0; l < vm.ladder().levels(); ++l) {
    EXPECT_GT(vm.svc_layer_size_bytes(l, {0, 0}), 0);
  }
}

TEST(VideoModel, ComplexityIsTemporallyCorrelated) {
  auto cfg = small_config();
  cfg.duration_s = 200.0;
  cfg.complexity_rho = 0.9;
  const VideoModel vm(cfg);
  // Lag-1 autocorrelation of the per-chunk complexity should be positive
  // and substantial for rho = 0.9.
  double num = 0.0, den = 0.0, mean = 0.0;
  const int n = vm.chunk_count();
  for (int t = 0; t < n; ++t) mean += vm.complexity({0, t});
  mean /= n;
  for (int t = 0; t + 1 < n; ++t) {
    num += (vm.complexity({0, t}) - mean) * (vm.complexity({0, t + 1}) - mean);
  }
  for (int t = 0; t < n; ++t) {
    den += (vm.complexity({0, t}) - mean) * (vm.complexity({0, t}) - mean);
  }
  EXPECT_GT(num / den, 0.5);
}

TEST(VideoModel, SameSeedSameSizes) {
  const VideoModel a(small_config());
  const VideoModel b(small_config());
  for (geo::TileId tile = 0; tile < a.tile_count(); ++tile) {
    EXPECT_EQ(a.avc_size_bytes(2, {tile, 5}), b.avc_size_bytes(2, {tile, 5}));
  }
}

TEST(VideoModel, OutOfRangeKeyThrows) {
  const VideoModel vm(small_config());
  EXPECT_THROW((void)vm.avc_size_bytes(0, {-1, 0}), std::out_of_range);
  EXPECT_THROW((void)vm.avc_size_bytes(0, {0, 100}), std::out_of_range);
  EXPECT_THROW((void)vm.avc_size_bytes(99, {0, 0}), std::out_of_range);
}

TEST(VideoModel, SizeBytesDispatchesOnEncoding) {
  const VideoModel vm(small_config());
  const ChunkKey key{3, 4};
  EXPECT_EQ(vm.size_bytes({key, Encoding::kAvc, 2}), vm.avc_size_bytes(2, key));
  EXPECT_EQ(vm.size_bytes({key, Encoding::kSvc, 2}), vm.svc_layer_size_bytes(2, key));
}

TEST(Manifest, ExposesModelMetadata) {
  auto model = std::make_shared<VideoModel>(small_config());
  const Manifest m(model);
  EXPECT_EQ(m.tile_count(), 8);
  EXPECT_EQ(m.chunk_count(), 10);
  EXPECT_EQ(m.chunk_duration(), sim::seconds(1.0));
  EXPECT_FALSE(m.describe().empty());
}

TEST(Manifest, NullModelThrows) {
  EXPECT_THROW(Manifest(nullptr), std::invalid_argument);
}

TEST(ContentStore, ServesAndAccounts) {
  auto model = std::make_shared<VideoModel>(small_config());
  ContentStore store(model);
  const ChunkAddress addr{{0, 0}, Encoding::kAvc, 1};
  const auto size = store.serve(addr);
  EXPECT_EQ(size, model->size_bytes(addr));
  EXPECT_EQ(store.bytes_served(), size);
  EXPECT_EQ(store.requests_served(), 1);
}

TEST(ContentStore, VersioningCostsMoreThanTiling) {
  // The paper's §2 tradeoff: versioning with 88 versions dwarfs tiled storage.
  auto model = std::make_shared<VideoModel>(small_config());
  const ContentStore store(model);
  const auto tiling = store.storage_bytes_tiling(/*with_svc=*/true);
  const auto versioning = store.storage_bytes_versioning(88);
  EXPECT_GT(versioning, tiling * 10);
}

TEST(ContentStore, TilingWithSvcCostsMoreThanWithout) {
  auto model = std::make_shared<VideoModel>(small_config());
  const ContentStore store(model);
  EXPECT_GT(store.storage_bytes_tiling(true), store.storage_bytes_tiling(false));
}

TEST(Mpd, RoundTripReconstructsIdenticalVideo) {
  auto cfg = small_config();
  cfg.projection = "cubemap";
  cfg.tile_cols = 6;  // cubemap atlas wants cols % 3 == 0
  cfg.svc_overhead = 0.17;
  const std::string mpd = write_mpd(cfg);
  const VideoModelConfig restored = parse_mpd(mpd);
  const VideoModel a(cfg);
  const VideoModel b(restored);
  ASSERT_EQ(a.tile_count(), b.tile_count());
  ASSERT_EQ(a.chunk_count(), b.chunk_count());
  for (geo::TileId tile = 0; tile < a.tile_count(); tile += 3) {
    for (media::ChunkIndex t = 0; t < a.chunk_count(); t += 2) {
      EXPECT_EQ(a.avc_size_bytes(2, {tile, t}), b.avc_size_bytes(2, {tile, t}));
      EXPECT_EQ(a.svc_layer_size_bytes(1, {tile, t}),
                b.svc_layer_size_bytes(1, {tile, t}));
    }
  }
}

TEST(Mpd, WriterEmitsAllRepresentations) {
  const auto cfg = small_config();
  const std::string mpd = write_mpd(cfg);
  std::size_t count = 0, pos = 0;
  while ((pos = mpd.find("<Representation", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(cfg.ladder.levels()));
}

TEST(Mpd, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_mpd(""), std::runtime_error);
  EXPECT_THROW((void)parse_mpd("<NotMPD/>"), std::runtime_error);
  EXPECT_THROW((void)parse_mpd("<MPD duration=\"10\"></MPD>"), std::runtime_error);
  // Missing required attribute.
  EXPECT_THROW(
      (void)parse_mpd("<MPD duration=\"10\"><Representation kbps=\"1\"/></MPD>"),
      std::runtime_error);
  // Non-numeric attribute.
  const auto good = write_mpd(small_config());
  std::string bad = good;
  bad.replace(bad.find("duration=\""), 12, "duration=\"xx");
  EXPECT_THROW((void)parse_mpd(bad), std::runtime_error);
  // Mismatched closing tag.
  EXPECT_THROW((void)parse_mpd("<MPD duration=\"1\"></MPX>"), std::runtime_error);
  // Trailing garbage.
  EXPECT_THROW((void)parse_mpd(good + "extra"), std::runtime_error);
}

TEST(Mpd, ToleratesWhitespaceVariants) {
  const std::string mpd =
      "  <MPD   duration=\"10\" chunkDuration=\"1\" projection=\"equirectangular\""
      " tileRows=\"2\" tileCols=\"4\" svcOverhead=\"0.1\" complexitySigma=\"0.2\""
      " complexityRho=\"0.5\" areaMix=\"0.5\" seed=\"3\" >\n"
      "   <Representation   kbps=\"1000\" />\n"
      "   <Representation kbps=\"2000\"/>\n"
      "  </MPD>  ";
  const auto cfg = parse_mpd(mpd);
  EXPECT_EQ(cfg.tile_rows, 2);
  EXPECT_EQ(cfg.ladder.levels(), 2);
  EXPECT_DOUBLE_EQ(cfg.ladder.panorama_kbps(1), 2000.0);
}

TEST(ChunkKey, HashAndEquality) {
  const ChunkKey a{1, 2};
  const ChunkKey b{1, 2};
  const ChunkKey c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<ChunkKey>{}(a), std::hash<ChunkKey>{}(b));
}

}  // namespace
}  // namespace sperke::media
