// Tile-ABR policy arena tests: the abr::make_policy factory contract, the
// per-policy golden determinism guarantee (two independently constructed
// instances produce byte-identical plans for the same inputs), and the
// policy-specific allocation invariants of the related-work competitors
// (knapsack, consistency, fullpano) behind the TileAbrPolicy interface.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "abr/factory.h"
#include "abr/regular_vra.h"

namespace sperke::abr {
namespace {

std::shared_ptr<media::VideoModel> make_video() {
  media::VideoModelConfig cfg;
  cfg.duration_s = 20.0;
  cfg.chunk_duration_s = 1.0;
  cfg.tile_rows = 4;
  cfg.tile_cols = 6;
  cfg.seed = 5;
  return std::make_shared<media::VideoModel>(cfg);
}

std::vector<double> probs_for(const media::VideoModel& video,
                              const std::vector<geo::TileId>& fov) {
  std::vector<double> probs(static_cast<std::size_t>(video.tile_count()), 0.01);
  for (geo::TileId tile : fov) probs[static_cast<std::size_t>(tile)] = 0.2;
  double sum = 0.0;
  for (double p : probs) sum += p;
  for (double& p : probs) p /= sum;
  return probs;
}

bool same_plan(const ChunkPlan& a, const ChunkPlan& b) {
  if (a.index != b.index || a.fov_quality != b.fov_quality ||
      a.fetches.size() != b.fetches.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.fetches.size(); ++i) {
    if (a.fetches[i].address != b.fetches[i].address ||
        a.fetches[i].spatial != b.fetches[i].spatial ||
        a.fetches[i].visibility_probability !=
            b.fetches[i].visibility_probability) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------- factory

TEST(PolicyFactory, NamesAreStableAndResolvable) {
  const auto names = policy_names();
  const std::vector<std::string_view> expected{"sperke", "knapsack",
                                               "consistency", "fullpano"};
  EXPECT_TRUE(std::equal(names.begin(), names.end(), expected.begin(),
                         expected.end()));
  auto video = make_video();
  for (std::string_view name : names) {
    TileAbrConfig config;
    config.policy = name;
    const auto policy = make_policy(video, config);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(PolicyFactory, UnknownPolicyErrorListsValidNames) {
  auto video = make_video();
  TileAbrConfig config;
  config.policy = "oracle";
  try {
    (void)make_policy(video, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("oracle"), std::string::npos) << what;
    for (std::string_view name : policy_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
  EXPECT_THROW(validate_policy_name("oracle"), std::invalid_argument);
  for (std::string_view name : policy_names()) {
    EXPECT_NO_THROW(validate_policy_name(std::string(name)));
  }
}

TEST(PolicyFactory, NullVideoRejectedByEveryPolicy) {
  for (std::string_view name : policy_names()) {
    TileAbrConfig config;
    config.policy = name;
    EXPECT_THROW((void)make_policy(nullptr, config), std::invalid_argument)
        << name;
  }
}

TEST(RegularVraFactory, UnknownNameErrorListsValidNames) {
  try {
    (void)make_regular_vra("quantum");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum"), std::string::npos) << what;
    for (const char* name :
         {"throughput", "buffer", "mpc", "bola", "fixed-<level>"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(RegularVraFactory, MalformedFixedLevelsRejected) {
  EXPECT_NO_THROW((void)make_regular_vra("fixed-2"));
  EXPECT_THROW((void)make_regular_vra("fixed-"), std::invalid_argument);
  EXPECT_THROW((void)make_regular_vra("fixed-x"), std::invalid_argument);
  EXPECT_THROW((void)make_regular_vra("fixed--1"), std::invalid_argument);
  EXPECT_THROW((void)make_regular_vra("fixed-2x"), std::invalid_argument);
}

// ----------------------------------------------------- golden determinism

class PolicyGolden : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<TileAbrPolicy> make() const {
    TileAbrConfig config;
    config.policy = GetParam();
    return make_policy(video, config);
  }

  std::shared_ptr<media::VideoModel> video = make_video();
  std::vector<geo::TileId> fov{7, 8, 9, 13, 14, 15};
};

TEST_P(PolicyGolden, IndependentInstancesPlanIdentically) {
  // Two separately constructed instances of the same policy must plan
  // byte-identically — the property that lets every shard build its own
  // instance from the shared TileAbrConfig without breaking determinism.
  const auto a = make();
  const auto b = make();
  const auto probs = probs_for(*video, fov);
  for (int round = 0; round < 3; ++round) {
    const auto index = static_cast<media::ChunkIndex>(round);
    const double kbps = 4'000.0 * (round + 1);
    const ChunkPlan plan_a =
        a->plan_chunk(index, fov, probs, kbps, sim::seconds(2.0), round);
    const ChunkPlan plan_b =
        b->plan_chunk(index, fov, probs, kbps, sim::seconds(2.0), round);
    EXPECT_TRUE(same_plan(plan_a, plan_b)) << "round " << round;
    EXPECT_FALSE(plan_a.fetches.empty());
  }
}

TEST_P(PolicyGolden, PlanChunkIntoMatchesPlanChunkAcrossWorkspaceReuse) {
  const auto policy = make();
  const auto probs = probs_for(*video, fov);
  TileAbrPolicy::PlanWorkspace workspace;  // reused across every call
  ChunkPlan into;
  for (int round = 0; round < 3; ++round) {
    const auto index = static_cast<media::ChunkIndex>(round);
    const double kbps = 2'000.0 + 5'000.0 * round;
    const ChunkPlan fresh =
        policy->plan_chunk(index, fov, probs, kbps, sim::seconds(1.5), 1);
    policy->plan_chunk_into(index, fov, probs, kbps, sim::seconds(1.5), 1,
                            workspace, into);
    EXPECT_TRUE(same_plan(fresh, into)) << "round " << round;
  }
}

TEST_P(PolicyGolden, EmptyFovThrows) {
  const auto policy = make();
  EXPECT_THROW(
      (void)policy->plan_chunk(0, {}, {}, 8'000.0, sim::seconds(2.0), 0),
      std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyGolden,
                         ::testing::Values("sperke", "knapsack", "consistency",
                                           "fullpano"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------------- interface surface

TEST(PolicyInterface, BaseTierEncodingFollowsSperkeMode) {
  auto video = make_video();
  TileAbrConfig config;
  config.policy = "sperke";
  for (const auto& [mode, encoding] :
       {std::pair{EncodingMode::kAvcNoUpgrade, media::Encoding::kAvc},
        std::pair{EncodingMode::kAvcRefetch, media::Encoding::kAvc},
        std::pair{EncodingMode::kSvc, media::Encoding::kSvc},
        std::pair{EncodingMode::kHybrid, media::Encoding::kSvc}}) {
    config.sperke.mode = mode;
    EXPECT_EQ(make_policy(video, config)->base_tier_encoding(), encoding)
        << to_string(mode);
  }
  for (const char* name : {"knapsack", "consistency", "fullpano"}) {
    config.policy = name;
    EXPECT_EQ(make_policy(video, config)->base_tier_encoding(),
              media::Encoding::kAvc)
        << name;
  }
}

TEST(PolicyInterface, OnlySperkeExposesAnUpgradeWindow) {
  auto video = make_video();
  TileAbrConfig config;
  EXPECT_EQ(make_policy(video, config)->upgrade_window(),
            config.sperke.upgrade_window);
  for (const char* name : {"knapsack", "consistency", "fullpano"}) {
    config.policy = name;
    EXPECT_EQ(make_policy(video, config)->upgrade_window(), sim::Duration{0})
        << name;
  }
}

TEST(PolicyInterface, DefaultConsiderUpgradeDeclines) {
  // Competitors inherit the no-op upgrade path: whatever the state, they
  // never ask for mid-flight refinement fetches.
  auto video = make_video();
  for (const char* name : {"knapsack", "consistency", "fullpano"}) {
    TileAbrConfig config;
    config.policy = name;
    const auto policy = make_policy(video, config);
    const auto decision = policy->consider_upgrade(
        {3, 1}, 0, 0, 3, 0.9, sim::seconds(1.0), 50'000.0);
    EXPECT_FALSE(decision.upgrade) << name;
    EXPECT_TRUE(decision.fetches.empty()) << name;
  }
}

// ------------------------------------------------------------- knapsack

class KnapsackTest : public ::testing::Test {
 protected:
  std::shared_ptr<media::VideoModel> video = make_video();
  std::vector<geo::TileId> fov{7, 8, 13, 14};
};

TEST_F(KnapsackTest, RespectsByteBudgetBeyondCoverageFloor) {
  KnapsackVra vra(video, {});
  const auto probs = probs_for(*video, fov);
  const double kbps = 6'000.0;
  const ChunkPlan plan =
      vra.plan_chunk(2, fov, probs, kbps, sim::seconds(2.0), 0);
  const double chunk_s = sim::to_seconds(video->chunk_duration());
  const auto budget = static_cast<std::int64_t>(
      kbps * vra.config().safety * chunk_s * 1000.0 / 8.0);
  std::int64_t floor_bytes = 0;
  for (geo::TileId t : fov) floor_bytes += video->avc_size_bytes(0, {t, 2});
  EXPECT_LE(plan.total_bytes(*video), std::max(budget, floor_bytes));
}

TEST_F(KnapsackTest, MoreBandwidthNeverLowersAllocations) {
  KnapsackVra vra(video, {});
  const auto probs = probs_for(*video, fov);
  ChunkPlan last;
  std::int64_t last_bytes = 0;
  for (const double kbps : {2'000.0, 8'000.0, 40'000.0}) {
    const ChunkPlan plan =
        vra.plan_chunk(1, fov, probs, kbps, sim::seconds(2.0), 0);
    const std::int64_t bytes = plan.total_bytes(*video);
    EXPECT_GE(bytes, last_bytes);
    EXPECT_GE(plan.fov_quality, last.fov_quality);
    last = plan;
    last_bytes = bytes;
  }
  // At 40 Mbps the plan should reach past the base tier.
  EXPECT_GT(last.fov_quality, 0);
}

TEST_F(KnapsackTest, FovCoveredEvenWithZeroThroughputEstimate) {
  KnapsackVra vra(video, {});
  const auto probs = probs_for(*video, fov);
  const ChunkPlan plan = vra.plan_chunk(0, fov, probs, 0.0, sim::Duration{0}, 0);
  std::vector<geo::TileId> fetched;
  for (const auto& fetch : plan.fetches) {
    EXPECT_EQ(fetch.address.encoding, media::Encoding::kAvc);
    EXPECT_EQ(fetch.address.level, 0);
    EXPECT_EQ(fetch.spatial, SpatialClass::kFov);
    fetched.push_back(fetch.address.key.tile);
  }
  EXPECT_EQ(fetched, fov);
}

TEST_F(KnapsackTest, ImprobableTilesNeverEnter) {
  KnapsackVraConfig cfg;
  cfg.min_probability = 0.05;
  KnapsackVra vra(video, cfg);
  // Everything outside the FoV sits below min_probability.
  std::vector<double> probs(static_cast<std::size_t>(video->tile_count()),
                            0.01);
  for (geo::TileId t : fov) probs[static_cast<std::size_t>(t)] = 0.2;
  const ChunkPlan plan =
      vra.plan_chunk(0, fov, probs, 100'000.0, sim::seconds(2.0), 0);
  for (const auto& fetch : plan.fetches) {
    EXPECT_TRUE(std::find(fov.begin(), fov.end(), fetch.address.key.tile) !=
                fov.end())
        << "tile " << fetch.address.key.tile;
  }
}

TEST_F(KnapsackTest, RejectsBadConfig) {
  EXPECT_THROW(KnapsackVra(video, {.safety = 0.0}), std::invalid_argument);
  EXPECT_THROW(KnapsackVra(video, {.safety = 1.5}), std::invalid_argument);
}

// ---------------------------------------------------------- consistency

class ConsistencyTest : public ::testing::Test {
 protected:
  std::shared_ptr<media::VideoModel> video = make_video();
  std::vector<geo::TileId> fov{7, 8, 13, 14};
};

TEST_F(ConsistencyTest, TemporalRiseIsClamped) {
  ConsistencyVra vra(video, {});
  const auto probs = probs_for(*video, fov);
  // Effectively unlimited bandwidth: only the temporal clamp can bind.
  const ChunkPlan plan =
      vra.plan_chunk(0, fov, probs, 1e9, sim::seconds(2.0), /*last=*/0);
  EXPECT_EQ(plan.fov_quality, vra.config().max_temporal_step);
  // Drops are unconstrained: from the top level a collapse lands on base.
  const ChunkPlan crash = vra.plan_chunk(
      0, fov, probs, 900.0, sim::seconds(2.0), video->ladder().max_level());
  EXPECT_EQ(crash.fov_quality, 0);
}

TEST_F(ConsistencyTest, QualityDecaysBySpatialRing) {
  ConsistencyVra vra(video, {});
  const auto probs = probs_for(*video, fov);
  const ChunkPlan plan =
      vra.plan_chunk(0, fov, probs, 1e9, sim::seconds(2.0), /*last=*/3);
  media::QualityLevel fov_level = -1;
  media::QualityLevel max_oos_level = -1;
  for (const auto& fetch : plan.fetches) {
    if (fetch.spatial == SpatialClass::kFov) {
      fov_level = fetch.address.level;
      EXPECT_EQ(fetch.address.level, plan.fov_quality);
    } else {
      max_oos_level = std::max(max_oos_level, fetch.address.level);
    }
  }
  ASSERT_GE(fov_level, 1);
  ASSERT_GE(max_oos_level, 0);  // margin exists
  EXPECT_LT(max_oos_level, fov_level);  // and sits strictly below the FoV
}

TEST_F(ConsistencyTest, EmergencyDropsMarginAndKeepsBaseFov) {
  ConsistencyVra vra(video, {});
  const auto probs = probs_for(*video, fov);
  // Throughput far below even the all-base plan.
  const ChunkPlan plan =
      vra.plan_chunk(0, fov, probs, 1.0, sim::seconds(2.0), 2);
  EXPECT_EQ(plan.fov_quality, 0);
  std::vector<geo::TileId> fetched;
  for (const auto& fetch : plan.fetches) {
    EXPECT_EQ(fetch.spatial, SpatialClass::kFov);
    EXPECT_EQ(fetch.address.level, 0);
    fetched.push_back(fetch.address.key.tile);
  }
  EXPECT_EQ(fetched, fov);
}

TEST_F(ConsistencyTest, RejectsBadConfig) {
  EXPECT_THROW(ConsistencyVra(video, {.safety = -0.1}), std::invalid_argument);
  EXPECT_THROW(ConsistencyVra(video, {.max_temporal_step = 0}),
               std::invalid_argument);
  EXPECT_THROW(ConsistencyVra(video, {.spatial_step = 0}),
               std::invalid_argument);
  EXPECT_THROW(ConsistencyVra(video, {.max_rings = -1}),
               std::invalid_argument);
}

// -------------------------------------------------------------- fullpano

TEST(FullPanoramaTest, FetchesEveryTileAtOneLevel) {
  auto video = make_video();
  FullPanoramaVra vra(video, {});
  const std::vector<geo::TileId> fov{7, 8};
  const auto probs = probs_for(*video, fov);
  const ChunkPlan plan =
      vra.plan_chunk(1, fov, probs, 50'000.0, sim::seconds(2.0), 0);
  ASSERT_EQ(plan.fetches.size(),
            static_cast<std::size_t>(video->tile_count()));
  int fov_marked = 0;
  for (const auto& fetch : plan.fetches) {
    EXPECT_EQ(fetch.address.level, plan.fov_quality);
    EXPECT_EQ(fetch.address.encoding, media::Encoding::kAvc);
    if (fetch.spatial == SpatialClass::kFov) ++fov_marked;
  }
  EXPECT_EQ(fov_marked, static_cast<int>(fov.size()));
}

TEST(FullPanoramaTest, UniformLevelTracksBandwidth) {
  auto video = make_video();
  FullPanoramaVra vra(video, {});
  const std::vector<geo::TileId> fov{7, 8};
  const auto probs = probs_for(*video, fov);
  const auto low = vra.plan_chunk(1, fov, probs, 3'000.0, sim::seconds(2.0), 0);
  const auto high = vra.plan_chunk(1, fov, probs, 1e6, sim::seconds(2.0), 0);
  EXPECT_LE(low.fov_quality, high.fov_quality);
  EXPECT_EQ(high.fov_quality, video->ladder().max_level());
}

}  // namespace
}  // namespace sperke::abr
