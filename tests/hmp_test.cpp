#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hmp/accuracy.h"
#include "hmp/fusion.h"
#include "hmp/head_trace.h"
#include "hmp/heatmap.h"
#include "hmp/predictor.h"
#include "hmp/user_model.h"

namespace sperke::hmp {
namespace {

HeadTraceConfig trace_config(std::uint64_t seed = 1, double duration_s = 30.0) {
  HeadTraceConfig cfg;
  cfg.duration_s = duration_s;
  cfg.sample_rate_hz = 25.0;
  cfg.profile = UserProfile::adult();
  cfg.attractors = default_attractors(duration_s, 42);
  cfg.seed = seed;
  return cfg;
}

geo::TileGeometry test_geometry() {
  return geo::TileGeometry(geo::make_projection("equirectangular"),
                           geo::TileGrid(4, 6));
}

TEST(HeadTrace, GeneratorProducesOrderedSamples) {
  const HeadTrace trace = generate_head_trace(trace_config());
  ASSERT_GT(trace.samples().size(), 100u);
  for (std::size_t i = 1; i < trace.samples().size(); ++i) {
    EXPECT_GT(trace.samples()[i].t, trace.samples()[i - 1].t);
  }
  EXPECT_NEAR(sim::to_seconds(trace.duration()), 30.0, 0.2);
}

TEST(HeadTrace, DeterministicPerSeed) {
  const HeadTrace a = generate_head_trace(trace_config(5));
  const HeadTrace b = generate_head_trace(trace_config(5));
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); i += 50) {
    EXPECT_DOUBLE_EQ(a.samples()[i].orientation.yaw_deg,
                     b.samples()[i].orientation.yaw_deg);
  }
}

TEST(HeadTrace, DifferentSeedsDiverge) {
  const HeadTrace a = generate_head_trace(trace_config(5));
  const HeadTrace b = generate_head_trace(trace_config(6));
  double total_diff = 0.0;
  for (std::size_t i = 0; i < a.samples().size(); i += 25) {
    total_diff += geo::angular_distance_deg(a.samples()[i].orientation,
                                            b.samples()[i].orientation);
  }
  EXPECT_GT(total_diff, 10.0);
}

TEST(HeadTrace, SpeedRespectsProfileBound) {
  auto cfg = trace_config();
  cfg.profile = UserProfile::elderly();  // 60 deg/s bound
  const HeadTrace trace = generate_head_trace(cfg);
  const auto& samples = trace.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = sim::to_seconds(samples[i].t - samples[i - 1].t);
    const double speed = geo::angular_distance_deg(samples[i - 1].orientation,
                                                   samples[i].orientation) / dt;
    EXPECT_LT(speed, cfg.profile.max_speed_dps * 1.5)  // + jitter margin
        << "at sample " << i;
  }
}

TEST(HeadTrace, ElderlySlowerThanTeenager) {
  auto eld = trace_config(9);
  eld.profile = UserProfile::elderly();
  auto teen = trace_config(9);
  teen.profile = UserProfile::teenager();
  EXPECT_LT(generate_head_trace(eld).mean_speed_dps(),
            generate_head_trace(teen).mean_speed_dps());
}

TEST(HeadTrace, LyingPoseStaysInYawBand) {
  auto cfg = trace_config(11, 60.0);
  cfg.profile = UserProfile::lying();
  cfg.start = geo::Orientation{0.0, 0.0, 0.0};
  const HeadTrace trace = generate_head_trace(cfg);
  const double band = pose_yaw_half_range_deg(Pose::kLying);
  for (const auto& sample : trace.samples()) {
    EXPECT_LE(std::abs(sample.orientation.yaw_deg), band + 5.0);
  }
}

TEST(HeadTrace, InterpolationIsContinuous) {
  const HeadTrace trace = generate_head_trace(trace_config());
  const auto t1 = sim::seconds(5.00);
  const auto t2 = sim::seconds(5.02);  // half a sample apart
  EXPECT_LT(geo::angular_distance_deg(trace.orientation_at(t1),
                                      trace.orientation_at(t2)),
            10.0);
}

TEST(HeadTrace, OrientationClampsAtEnds) {
  const HeadTrace trace = generate_head_trace(trace_config());
  const auto before = trace.orientation_at(sim::Duration{-100});
  const auto at0 = trace.orientation_at(sim::kTimeZero);
  EXPECT_DOUBLE_EQ(before.yaw_deg, at0.yaw_deg);
  const auto after = trace.orientation_at(sim::seconds(1e6));
  EXPECT_DOUBLE_EQ(after.yaw_deg, trace.samples().back().orientation.yaw_deg);
}

TEST(HeadTrace, RejectsBadInput) {
  EXPECT_THROW(HeadTrace({}, 25.0), std::invalid_argument);
  std::vector<HeadSample> bad{{sim::seconds(1.0), {}}, {sim::seconds(1.0), {}}};
  EXPECT_THROW(HeadTrace(std::move(bad), 25.0), std::invalid_argument);
  auto cfg = trace_config();
  cfg.duration_s = -1.0;
  EXPECT_THROW((void)generate_head_trace(cfg), std::invalid_argument);
}

TEST(Predictors, StaticReturnsLastObservation) {
  StaticPredictor p;
  p.observe({sim::seconds(1.0), {10.0, 5.0, 0.0}});
  p.observe({sim::seconds(2.0), {20.0, -5.0, 0.0}});
  const auto out = p.predict(sim::seconds(1.0));
  EXPECT_DOUBLE_EQ(out.yaw_deg, 20.0);
  EXPECT_DOUBLE_EQ(out.pitch_deg, -5.0);
}

TEST(Predictors, DeadReckoningExtrapolatesVelocity) {
  DeadReckoningPredictor p(sim::milliseconds(500), /*damping_tau_s=*/100.0);
  // 10 deg/s yaw motion.
  for (int i = 0; i <= 10; ++i) {
    p.observe({sim::milliseconds(100 * i), {i * 1.0, 0.0, 0.0}});
  }
  const auto out = p.predict(sim::seconds(1.0));
  EXPECT_NEAR(out.yaw_deg, 10.0 + 10.0, 0.6);  // ~linear for huge tau
}

TEST(Predictors, DeadReckoningDampsLongHorizons) {
  DeadReckoningPredictor p(sim::milliseconds(500), /*damping_tau_s=*/0.5);
  for (int i = 0; i <= 10; ++i) {
    p.observe({sim::milliseconds(100 * i), {i * 10.0, 0.0, 0.0}});
  }
  // 100 deg/s velocity, but damping means travel << 100 deg over 1 s.
  const auto out = p.predict(sim::seconds(1.0));
  const double travel = angle_diff_deg(out.yaw_deg, 100.0);
  EXPECT_LT(std::abs(travel), 60.0);
  EXPECT_GT(std::abs(travel), 20.0);
}

TEST(Predictors, LinearRegressionTracksLinearMotion) {
  LinearRegressionPredictor p(sim::seconds(1.0));
  for (int i = 0; i <= 25; ++i) {
    p.observe({sim::milliseconds(40 * i), {i * 0.8, i * 0.2, 0.0}});
  }
  // Motion: 20 deg/s yaw, 5 deg/s pitch; last sample at yaw=20, pitch=5.
  // The slope is trusted for a damped travel time
  // h_eff = 0.8 * (1 - exp(-0.5/0.8)) = 0.3718 s.
  const auto out = p.predict(sim::milliseconds(500));
  EXPECT_NEAR(out.yaw_deg, 20.0 + 20.0 * 0.3718, 0.5);
  EXPECT_NEAR(out.pitch_deg, 5.0 + 5.0 * 0.3718, 0.5);
}

TEST(Predictors, LinearRegressionHandlesYawWrap) {
  LinearRegressionPredictor p(sim::seconds(1.0));
  // Crossing the 180/-180 seam at 40 deg/s.
  for (int i = 0; i <= 25; ++i) {
    const double yaw = wrap_deg180(170.0 + i * 1.6);
    p.observe({sim::milliseconds(40 * i), {yaw, 0.0, 0.0}});
  }
  const auto out = p.predict(sim::milliseconds(250));
  // Last yaw = 170+40 = 210 -> -150; plus 40 deg/s for the damped
  // h_eff = 0.8 * (1 - exp(-0.25/0.8)) = 0.2147 s -> -141.4.
  EXPECT_NEAR(out.yaw_deg, -150.0 + 40.0 * 0.2147, 1.0);
}

TEST(Predictors, PredictWithoutHistoryIsSafe) {
  for (const char* name : {"static", "dead-reckoning", "linear-regression"}) {
    auto p = make_orientation_predictor(name);
    const auto out = p->predict(sim::seconds(1.0));
    EXPECT_DOUBLE_EQ(out.yaw_deg, 0.0) << name;
  }
}

TEST(Predictors, ResetClearsState) {
  LinearRegressionPredictor p;
  for (int i = 0; i <= 10; ++i) {
    p.observe({sim::milliseconds(40 * i), {i * 2.0, 0.0, 0.0}});
  }
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict(sim::seconds(1.0)).yaw_deg, 0.0);
}

TEST(Predictors, FactoryRejectsUnknown) {
  EXPECT_THROW((void)make_orientation_predictor("oracle"), std::invalid_argument);
}

TEST(PredictorAccuracy, ShortHorizonBeatsLongHorizon) {
  const HeadTrace trace = generate_head_trace(trace_config(21, 60.0));
  const auto geometry = test_geometry();
  const geo::Viewport vp{100.0, 90.0};
  LinearRegressionPredictor p;
  const auto short_h = evaluate_predictor(p, trace, sim::milliseconds(200), geometry, vp);
  const auto long_h = evaluate_predictor(p, trace, sim::seconds(3.0), geometry, vp);
  EXPECT_LT(short_h.mean_error_deg, long_h.mean_error_deg);
  EXPECT_GT(short_h.tile_recall, long_h.tile_recall);
}

TEST(PredictorAccuracy, MotionPredictorBeatsNothingAtShortHorizon) {
  const HeadTrace trace = generate_head_trace(trace_config(23, 60.0));
  const auto geometry = test_geometry();
  const geo::Viewport vp{100.0, 90.0};
  LinearRegressionPredictor lr;
  StaticPredictor st;
  const auto r_lr = evaluate_predictor(lr, trace, sim::milliseconds(500), geometry, vp);
  const auto r_st = evaluate_predictor(st, trace, sim::milliseconds(500), geometry, vp);
  EXPECT_GT(r_lr.evaluations, 100);
  // LR must stay in the same ballpark as static (saccades can make either
  // win on a given trace; a blowup would signal a regression).
  EXPECT_LT(r_lr.mean_error_deg, r_st.mean_error_deg * 1.6);
}

TEST(Heatmap, AccumulatesAndNormalizes) {
  ViewingHeatmap map(6, 4);
  const std::vector<geo::TileId> view{1, 2};
  map.add_view(0, view);
  map.add_view(0, view);
  const auto probs = map.probabilities(0);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_DOUBLE_EQ(map.count(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(map.total(0), 4.0);
}

TEST(Heatmap, EmptyChunkIsUniform) {
  ViewingHeatmap map(4, 2);
  const auto probs = map.probabilities(1);
  for (double p : probs) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(Heatmap, MergePoolsObservations) {
  ViewingHeatmap a(4, 2), b(4, 2);
  const std::vector<geo::TileId> v0{0};
  const std::vector<geo::TileId> v1{1};
  a.add_view(0, v0);
  b.add_view(0, v1);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.count(0, 1), 1.0);
}

TEST(Heatmap, MergeShapeMismatchThrows) {
  ViewingHeatmap a(4, 2), b(4, 3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Heatmap, AddTraceCoversWatchedTiles) {
  auto geometry = test_geometry();
  const HeadTrace trace = generate_head_trace(trace_config(31, 10.0));
  ViewingHeatmap map(geometry.grid().tile_count(), 10);
  map.add_trace(trace, geometry, {100.0, 90.0}, sim::seconds(1.0));
  // Every chunk should have nonzero observations.
  for (media::ChunkIndex c = 0; c < 10; ++c) {
    EXPECT_GT(map.total(c), 0.0) << "chunk " << c;
  }
}

TEST(Heatmap, OutOfRangeThrows) {
  ViewingHeatmap map(4, 2);
  const std::vector<geo::TileId> bad{7};
  EXPECT_THROW(map.add_view(0, bad), std::out_of_range);
  EXPECT_THROW((void)map.probabilities(9), std::out_of_range);
}

class FusionTest : public ::testing::Test {
 protected:
  std::shared_ptr<geo::TileGeometry> geometry =
      std::make_shared<geo::TileGeometry>(geo::make_projection("equirectangular"),
                                          geo::TileGrid(4, 6));
  geo::Viewport viewport{100.0, 90.0};

  FusionPredictor make_fusion(const ViewingHeatmap* crowd = nullptr,
                              ViewingContext context = {}) {
    return FusionPredictor(geometry, viewport,
                           std::make_unique<LinearRegressionPredictor>(), crowd,
                           context);
  }
};

TEST_F(FusionTest, ProbabilitiesSumToOne) {
  auto fusion = make_fusion();
  fusion.observe({sim::kTimeZero, {0.0, 0.0, 0.0}});
  const auto probs = fusion.tile_probabilities(sim::seconds(1.0), 0);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(FusionTest, MassConcentratesNearPredictedCenter) {
  auto fusion = make_fusion();
  for (int i = 0; i <= 10; ++i) {
    fusion.observe({sim::milliseconds(100 * i), {0.0, 0.0, 0.0}});
  }
  const auto probs = fusion.tile_probabilities(sim::milliseconds(200), 0);
  const geo::TileId center = geometry->grid().tile_at(
      geometry->projection().uv_from_direction(geo::Orientation{}.direction()));
  // The tile under the (static) gaze should be among the most probable.
  double max_prob = 0.0;
  for (double p : probs) max_prob = std::max(max_prob, p);
  EXPECT_GT(probs[static_cast<std::size_t>(center)], 0.6 * max_prob);
}

TEST_F(FusionTest, CrowdPriorShiftsLongHorizonMass) {
  ViewingHeatmap crowd(geometry->grid().tile_count(), 10);
  // The crowd overwhelmingly watches tile 9 during chunk 5.
  const std::vector<geo::TileId> popular{9};
  for (int i = 0; i < 200; ++i) crowd.add_view(5, popular);
  auto fusion = make_fusion(&crowd);
  fusion.observe({sim::kTimeZero, {0.0, 0.0, 0.0}});
  const auto with_crowd = fusion.tile_probabilities(sim::seconds(5.0), 5);

  auto fusion_plain = make_fusion();
  fusion_plain.observe({sim::kTimeZero, {0.0, 0.0, 0.0}});
  const auto without = fusion_plain.tile_probabilities(sim::seconds(5.0), 5);
  EXPECT_GT(with_crowd[9], without[9] * 1.5);
}

TEST_F(FusionTest, MotionDominatesShortHorizons) {
  // The crowd stares at a tile far behind the user; at a 100 ms horizon
  // the user's own gaze direction must still dominate the blend.
  const geo::TileId behind = geometry->grid().tile_at(
      geometry->projection().uv_from_direction(
          geo::Orientation{180.0, 0.0, 0.0}.direction()));
  ViewingHeatmap crowd(geometry->grid().tile_count(), 10);
  const std::vector<geo::TileId> popular{behind};
  for (int i = 0; i < 200; ++i) crowd.add_view(0, popular);
  auto fusion = make_fusion(&crowd);
  fusion.observe({sim::kTimeZero, {0.0, 0.0, 0.0}});
  const geo::TileId gaze = geometry->grid().tile_at(
      geometry->projection().uv_from_direction(geo::Orientation{}.direction()));
  const auto probs = fusion.tile_probabilities(sim::milliseconds(100), 0);
  EXPECT_GT(probs[static_cast<std::size_t>(gaze)],
            probs[static_cast<std::size_t>(behind)]);
}

TEST_F(FusionTest, SpeedBoundPrunesFarTiles) {
  ViewingContext context;
  context.max_speed_dps = 30.0;  // slow user
  auto fusion = make_fusion(nullptr, context);
  fusion.observe({sim::kTimeZero, {0.0, 0.0, 0.0}});
  const auto probs = fusion.tile_probabilities(sim::milliseconds(500), 0);
  // A tile ~180 deg away cannot be reached in 0.5 s at 30 deg/s.
  const geo::TileId behind = geometry->grid().tile_at(
      geometry->projection().uv_from_direction(
          geo::Orientation{180.0, 0.0, 0.0}.direction()));
  EXPECT_DOUBLE_EQ(probs[static_cast<std::size_t>(behind)], 0.0);
}

TEST_F(FusionTest, LyingPosePrunesRearTiles) {
  ViewingContext context;
  context.pose = Pose::kLying;
  context.home_yaw_deg = 0.0;
  auto fusion = make_fusion(nullptr, context);
  fusion.observe({sim::kTimeZero, {0.0, 0.0, 0.0}});
  const auto probs = fusion.tile_probabilities(sim::seconds(2.0), 0);
  const geo::TileId behind = geometry->grid().tile_at(
      geometry->projection().uv_from_direction(
          geo::Orientation{180.0, 0.0, 0.0}.direction()));
  EXPECT_DOUBLE_EQ(probs[static_cast<std::size_t>(behind)], 0.0);
}

TEST_F(FusionTest, EngagementConcentratesPrediction) {
  // A fully engaged viewer's probability map at a given horizon is more
  // concentrated (higher max, lower entropy) than a disengaged one's.
  auto run = [&](double engagement) {
    ViewingContext context;
    context.engagement = engagement;
    auto fusion = make_fusion(nullptr, context);
    for (int i = 0; i <= 10; ++i) {
      fusion.observe({sim::milliseconds(100 * i), {i * 3.0, 0.0, 0.0}});
    }
    return fusion.tile_probabilities(sim::seconds(2.0), 0);
  };
  const auto focused = run(1.0);
  const auto scanning = run(0.0);
  const double focused_max = *std::max_element(focused.begin(), focused.end());
  const double scanning_max = *std::max_element(scanning.begin(), scanning.end());
  EXPECT_GT(focused_max, scanning_max);
}

TEST_F(FusionTest, MismatchedHeatmapThrows) {
  ViewingHeatmap wrong(99, 10);
  EXPECT_THROW(make_fusion(&wrong), std::invalid_argument);
}

TEST(UserModel, LearnsSpeedBoundFromTraces) {
  UserModel model;
  EXPECT_FALSE(model.speed_bound_dps().has_value());
  auto cfg = trace_config(61);
  cfg.profile = UserProfile::elderly();
  for (int i = 0; i < 3; ++i) {
    cfg.seed = 61 + i;
    model.observe_trace(generate_head_trace(cfg));
  }
  ASSERT_TRUE(model.speed_bound_dps().has_value());
  EXPECT_EQ(model.traces_observed(), 3);
  // The learned bound covers the profile's peak speed with margin, but is
  // not wildly above it.
  EXPECT_GT(*model.speed_bound_dps(), cfg.profile.max_speed_dps * 0.5);
  EXPECT_LT(*model.speed_bound_dps(), cfg.profile.max_speed_dps * 2.5);
}

TEST(UserModel, ElderlyBoundBelowTeenagerBound) {
  auto learn = [](UserProfile profile) {
    UserModel model;
    auto cfg = trace_config(71, 60.0);
    cfg.profile = profile;
    for (int i = 0; i < 3; ++i) {
      cfg.seed = 71 + i;
      model.observe_trace(generate_head_trace(cfg));
    }
    return *model.speed_bound_dps();
  };
  EXPECT_LT(learn(UserProfile::elderly()), learn(UserProfile::teenager()));
}

TEST(UserModel, ContextCarriesLearnedBound) {
  UserModel model;
  model.observe_trace(generate_head_trace(trace_config(81)));
  const ViewingContext context = model.context();
  ASSERT_TRUE(context.max_speed_dps.has_value());
  EXPECT_DOUBLE_EQ(*context.max_speed_dps, *model.speed_bound_dps());
}

TEST(UserModel, RejectsBadParameters) {
  EXPECT_THROW(UserModel(0.0), std::invalid_argument);
  EXPECT_THROW(UserModel(101.0), std::invalid_argument);
  EXPECT_THROW(UserModel(95.0, 0.5), std::invalid_argument);
}

TEST(TileHitRate, PerfectWhenBudgetCoversAll) {
  const std::vector<double> probs{0.5, 0.3, 0.1, 0.1};
  const std::vector<geo::TileId> actual{0, 1};
  EXPECT_DOUBLE_EQ(tile_hit_rate(probs, actual, 2), 1.0);
}

TEST(TileHitRate, PartialWhenBudgetTooSmall) {
  const std::vector<double> probs{0.5, 0.1, 0.3, 0.1};
  const std::vector<geo::TileId> actual{0, 1};  // tile 1 ranked last-ish
  EXPECT_DOUBLE_EQ(tile_hit_rate(probs, actual, 2), 0.5);
}

TEST(TileHitRate, EmptyActualIsPerfect) {
  const std::vector<double> probs{1.0};
  EXPECT_DOUBLE_EQ(tile_hit_rate(probs, {}, 1), 1.0);
}

}  // namespace
}  // namespace sperke::hmp
