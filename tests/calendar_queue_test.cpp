// Property tests for the calendar-queue Simulator (DESIGN.md §13): random
// schedule/cancel/run_until interleavings must agree, event for event, with
// a reference implementation that keeps the former std::map<EventId, fn>
// queue — same firing order (exact (time, seq) minimum, FIFO ties), same
// events_executed, same clock — plus directed edge cases for bucket-array
// resize, epoch rollover (events far beyond one calendar year), and
// scheduling behind the calendar cursor.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace sperke::sim {
namespace {

// The pre-calendar-queue Simulator, kept verbatim as the semantic oracle.
class ReferenceSimulator {
 public:
  [[nodiscard]] Time now() const { return now_; }

  EventId schedule_at(Time at, std::function<void()> fn) {
    const EventId id{std::max(at, now_), next_seq_++};
    queue_.emplace(id, std::move(fn));
    return id;
  }

  bool cancel(EventId id) { return queue_.erase(id) > 0; }

  void run_until(Time deadline) {
    while (!queue_.empty()) {
      const auto it = queue_.begin();
      if (it->first.at > deadline) break;
      now_ = it->first.at;
      auto fn = std::move(it->second);
      queue_.erase(it);
      ++executed_;
      fn();
    }
    now_ = std::max(now_, deadline);
  }

  void run() {
    while (!queue_.empty()) {
      const auto it = queue_.begin();
      now_ = it->first.at;
      auto fn = std::move(it->second);
      queue_.erase(it);
      ++executed_;
      fn();
    }
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::map<EventId, std::function<void()>> queue_;
};

// Drives the real Simulator and the reference through an identical op
// sequence, recording each firing as (time, tag) and comparing the logs.
struct Harness {
  Simulator real;
  ReferenceSimulator ref;
  std::vector<std::pair<Time, int>> real_log;
  std::vector<std::pair<Time, int>> ref_log;
  std::vector<EventId> real_live;
  std::vector<EventId> ref_live;
  int next_tag = 0;

  void schedule(Time at) {
    const int tag = next_tag++;
    real_live.push_back(
        real.schedule_at(at, [this, tag] { real_log.emplace_back(real.now(), tag); }));
    ref_live.push_back(
        ref.schedule_at(at, [this, tag] { ref_log.emplace_back(ref.now(), tag); }));
  }

  void cancel_nth(std::size_t n) {
    if (real_live.empty()) return;
    n %= real_live.size();
    EXPECT_EQ(real.cancel(real_live[n]), ref.cancel(ref_live[n]));
    real_live.erase(real_live.begin() + static_cast<std::ptrdiff_t>(n));
    ref_live.erase(ref_live.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void run_until(Time deadline) {
    real.run_until(deadline);
    ref.run_until(deadline);
    check("run_until");
  }

  void run() {
    real.run();
    ref.run();
    check("run");
  }

  void check(const char* where) {
    ASSERT_EQ(real_log, ref_log) << where;
    ASSERT_EQ(real.now(), ref.now()) << where;
    ASSERT_EQ(real.pending_events(), ref.pending_events()) << where;
    ASSERT_EQ(real.events_executed(), ref.events_executed()) << where;
  }
};

TEST(CalendarQueueProperty, RandomInterleavingsMatchMapReference) {
  for (std::uint32_t seed = 0; seed < 20; ++seed) {
    std::mt19937 rng(seed);
    Harness h;
    std::uniform_int_distribution<int> op(0, 9);
    std::uniform_int_distribution<std::int64_t> dt(0, 2'000'000);  // 0..2 s
    for (int step = 0; step < 2000; ++step) {
      switch (op(rng)) {
        case 0:
        case 1:
        case 2:
        case 3:
        case 4:
        case 5:  // schedule near the clock (dense region)
          h.schedule(h.real.now() + Duration{dt(rng)});
          break;
        case 6:  // schedule far ahead (sparse region / future years)
          h.schedule(h.real.now() + Duration{dt(rng) * 4096});
          break;
        case 7:  // cancel a random still-tracked id (may have fired already)
          h.cancel_nth(rng());
          break;
        case 8:  // advance a little
          h.run_until(h.real.now() + Duration{dt(rng) / 4});
          break;
        default:  // advance a lot
          h.run_until(h.real.now() + Duration{dt(rng) * 64});
          break;
      }
    }
    h.run();
    h.check("final drain");
    ASSERT_EQ(h.real.pending_events(), 0u);
  }
}

TEST(CalendarQueueProperty, ReentrantSchedulingMatchesReference) {
  // Events that schedule more events while firing — including zero-delay
  // self-ties — exercise insertion at the exact cursor position.
  for (std::uint32_t seed = 100; seed < 105; ++seed) {
    Simulator real;
    ReferenceSimulator ref;
    std::vector<std::pair<Time, int>> real_log;
    std::vector<std::pair<Time, int>> ref_log;
    std::mt19937 real_rng(seed);
    std::mt19937 ref_rng(seed);
    std::uniform_int_distribution<std::int64_t> dt(0, 500'000);
    int real_budget = 400;
    int ref_budget = 400;
    std::function<void(int)> spawn_real = [&](int tag) {
      real_log.emplace_back(real.now(), tag);
      if (real_budget <= 0) return;
      for (int k = 0; k < 2; ++k) {
        const int child = --real_budget;
        real.schedule_after(Duration{dt(real_rng)},
                            [&spawn_real, child] { spawn_real(child); });
      }
    };
    std::function<void(int)> spawn_ref = [&](int tag) {
      ref_log.emplace_back(ref.now(), tag);
      if (ref_budget <= 0) return;
      for (int k = 0; k < 2; ++k) {
        const int child = --ref_budget;
        ref.schedule_at(ref.now() + Duration{dt(ref_rng)},
                        [&spawn_ref, child] { spawn_ref(child); });
      }
    };
    real.schedule_at(kTimeZero, [&spawn_real] { spawn_real(1000); });
    ref.schedule_at(kTimeZero, [&spawn_ref] { spawn_ref(1000); });
    real.run();
    ref.run();
    ASSERT_EQ(real_log, ref_log);
    ASSERT_EQ(real.events_executed(), ref.events_executed());
  }
}

TEST(CalendarQueue, SameInstantBurstFiresInFifoOrder) {
  // 10k events at one timestamp: a zero-spread resize degenerates every
  // event into one bucket; FIFO (seq) order must survive, O(1) via the
  // tail-append path.
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10'000; ++i) {
    s.schedule_at(seconds(1.0), [&order, i] { order.push_back(i); });
  }
  s.run();
  ASSERT_EQ(order.size(), 10'000u);
  for (int i = 0; i < 10'000; ++i) ASSERT_EQ(order[i], i);
}

TEST(CalendarQueue, GrowAndShrinkAcrossResizes) {
  // Pump the queue above and below the resize thresholds repeatedly; the
  // count and firing order must survive every redistribute.
  Simulator s;
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::int64_t> dt(1, 10'000'000);
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 5'000; ++i) {
    ids.push_back(s.schedule_at(Time{dt(rng)}, [&fired] { ++fired; }));
  }
  EXPECT_EQ(s.pending_events(), 5'000u);
  // Cancel 90% to force shrink resizes.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0 && s.cancel(ids[i])) ++cancelled;
  }
  EXPECT_EQ(s.pending_events(), 5'000u - static_cast<std::size_t>(cancelled));
  s.schedule_at(kTimeZero, [] {});  // sentinel behind every survivor
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(fired, 5'000 - cancelled);
}

TEST(CalendarQueue, EpochRolloverSparseFarFutureEvents) {
  // Events separated by far more than one calendar year (nbuckets × width)
  // exercise the direct-search fallback and the cursor jump.
  Simulator s;
  std::vector<double> fire_s;
  // Dense cluster to fix a small width, then exponentially sparse tail out
  // to ~36 years of simulated time.
  for (int i = 0; i < 64; ++i) {
    s.schedule_at(milliseconds(i), [&fire_s, &s] { fire_s.push_back(to_seconds(s.now())); });
  }
  double t = 1.0;
  for (int i = 0; i < 30; ++i, t *= 2.0) {
    s.schedule_at(seconds(t), [&fire_s, &s] { fire_s.push_back(to_seconds(s.now())); });
  }
  s.run();
  ASSERT_EQ(fire_s.size(), 94u);
  for (std::size_t i = 1; i < fire_s.size(); ++i) {
    ASSERT_LE(fire_s[i - 1], fire_s[i]);
  }
  EXPECT_DOUBLE_EQ(fire_s.back(), 536870912.0);  // 2^29 s
}

TEST(CalendarQueue, ScheduleBehindCursorAfterFarFutureTimer) {
  // Regression for the cursor-invariant bug: a lone far-future timer pulls
  // the calendar cursor forward during a bounded run_until peek; events
  // then scheduled near the clock sit behind the cursor and must still
  // fire in exact time order.
  Simulator s;
  std::vector<int> order;
  s.schedule_at(seconds(3600.0), [&order] { order.push_back(99); });
  s.run_until(seconds(1.0));  // peeks the far timer, fires nothing
  EXPECT_EQ(s.pending_events(), 1u);
  // Behind the cursor, deliberately out of bucket order.
  s.schedule_at(seconds(30.0), [&order] { order.push_back(2); });
  s.schedule_at(seconds(5.0), [&order] { order.push_back(0); });
  s.schedule_at(seconds(17.0), [&order] { order.push_back(1); });
  s.run_until(seconds(120.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 99}));
}

TEST(CalendarQueue, CancelIsExactOnTimeSeqPairs) {
  Simulator s;
  int fired = 0;
  const EventId a = s.schedule_at(seconds(1.0), [&fired] { ++fired; });
  const EventId b = s.schedule_at(seconds(1.0), [&fired] { ++fired; });
  EXPECT_TRUE(s.cancel(a));
  EXPECT_FALSE(s.cancel(a));  // already gone
  EXPECT_FALSE(s.cancel(EventId{b.at, b.seq + 100}));  // never existed
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.cancel(b));  // already fired
}

}  // namespace
}  // namespace sperke::sim
