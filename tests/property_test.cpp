// Property-based suites: invariants that must hold across the whole
// configuration space (projections x grids, ladders, encoding modes,
// network shapes), exercised with parameterized sweeps and seeded
// randomized inputs.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <tuple>

#include "abr/oos.h"
#include "core/session.h"
#include "core/transport.h"
#include "hmp/fusion.h"
#include "hmp/head_trace.h"
#include "net/link.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace sperke {
namespace {

// ---------------------------------------------------------------------------
// Geometry invariants across projection x grid.

using GeoParam = std::tuple<const char*, int, int>;  // projection, rows, cols

class GeometryProperty : public ::testing::TestWithParam<GeoParam> {
 protected:
  geo::TileGeometry make() const {
    const auto& [proj, rows, cols] = GetParam();
    return geo::TileGeometry(geo::make_projection(proj), geo::TileGrid(rows, cols));
  }
};

TEST_P(GeometryProperty, SolidAnglesPartitionTheSphere) {
  const auto tg = make();
  const auto& w = tg.solid_angle_fractions();
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-9);
}

TEST_P(GeometryProperty, EveryOrientationSeesSomething) {
  const auto tg = make();
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const geo::Orientation o{rng.uniform(-180.0, 180.0), rng.uniform(-80.0, 80.0),
                             rng.uniform(-180.0, 180.0)};
    const auto visible = tg.visible_tiles(o, {100.0, 90.0});
    EXPECT_FALSE(visible.empty());
    // The tile under the gaze direction is always in the set.
    const auto center = tg.grid().tile_at(
        tg.projection().uv_from_direction(o.direction()));
    EXPECT_TRUE(std::find(visible.begin(), visible.end(), center) !=
                visible.end());
  }
}

TEST_P(GeometryProperty, RingsCoverTheGridFromAnyFov) {
  const auto tg = make();
  const auto visible = tg.visible_tiles({30.0, 10.0, 0.0}, {100.0, 90.0});
  const auto rings = tg.oos_rings(visible);
  for (geo::TileId id = 0; id < tg.grid().tile_count(); ++id) {
    EXPECT_GE(rings[static_cast<std::size_t>(id)], 0);
    EXPECT_LT(rings[static_cast<std::size_t>(id)], tg.grid().tile_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProjectionsAndGrids, GeometryProperty,
    ::testing::Values(GeoParam{"equirectangular", 2, 4},
                      GeoParam{"equirectangular", 4, 6},
                      GeoParam{"equirectangular", 8, 12},
                      GeoParam{"cubemap", 2, 3}, GeoParam{"cubemap", 4, 6},
                      GeoParam{"cubemap", 6, 9}));

// ---------------------------------------------------------------------------
// Video model invariants across ladders and overheads.

using MediaParam = std::tuple<int, double>;  // ladder rungs, svc overhead

class VideoModelProperty : public ::testing::TestWithParam<MediaParam> {
 protected:
  std::shared_ptr<media::VideoModel> make() const {
    const auto& [rungs, overhead] = GetParam();
    std::vector<double> ladder;
    double kbps = 800.0;
    for (int i = 0; i < rungs; ++i) {
      ladder.push_back(kbps);
      kbps *= 1.9;
    }
    media::VideoModelConfig cfg;
    cfg.duration_s = 8.0;
    cfg.tile_rows = 3;
    cfg.tile_cols = 4;
    cfg.ladder = media::QualityLadder(std::move(ladder));
    cfg.svc_overhead = overhead;
    cfg.seed = 31;
    return std::make_shared<media::VideoModel>(cfg);
  }
};

TEST_P(VideoModelProperty, SizesStrictlyIncreaseInQuality) {
  auto video = make();
  for (geo::TileId tile = 0; tile < video->tile_count(); ++tile) {
    for (media::ChunkIndex t = 0; t < video->chunk_count(); ++t) {
      for (media::QualityLevel q = 1; q < video->ladder().levels(); ++q) {
        EXPECT_GT(video->avc_size_bytes(q, {tile, t}),
                  video->avc_size_bytes(q - 1, {tile, t}));
      }
    }
  }
}

TEST_P(VideoModelProperty, SvcLayersAlwaysRecomposeExactly) {
  auto video = make();
  const auto top = video->ladder().max_level();
  for (geo::TileId tile = 0; tile < video->tile_count(); ++tile) {
    const media::ChunkKey key{tile, 1};
    std::int64_t sum = 0;
    for (media::LayerIndex l = 0; l <= top; ++l) {
      const auto layer = video->svc_layer_size_bytes(l, key);
      EXPECT_GE(layer, 0);
      sum += layer;
    }
    EXPECT_EQ(sum, video->svc_cumulative_size_bytes(top, key));
    EXPECT_GE(video->svc_cumulative_size_bytes(top, key),
              video->avc_size_bytes(top, key));
  }
}

TEST_P(VideoModelProperty, PanoramaBytesScaleWithLadder) {
  auto video = make();
  auto panorama_bytes = [&](media::QualityLevel q) {
    std::int64_t total = 0;
    for (geo::TileId tile = 0; tile < video->tile_count(); ++tile) {
      total += video->avc_size_bytes(q, {tile, 0});
    }
    return total;
  };
  for (media::QualityLevel q = 1; q < video->ladder().levels(); ++q) {
    const double ratio = static_cast<double>(panorama_bytes(q)) /
                         static_cast<double>(panorama_bytes(q - 1));
    const double ladder_ratio = video->ladder().panorama_kbps(q) /
                                video->ladder().panorama_kbps(q - 1);
    EXPECT_NEAR(ratio, ladder_ratio, ladder_ratio * 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(LaddersAndOverheads, VideoModelProperty,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Values(0.0, 0.1, 0.3)));

// ---------------------------------------------------------------------------
// Link byte conservation under randomized concurrent workloads.

TEST(LinkProperty, DeliveredBytesMatchCompletedTransfers) {
  Rng rng(91);
  for (int round = 0; round < 5; ++round) {
    sim::Simulator simulator;
    net::Link link(simulator,
                   net::LinkConfig{.bandwidth = net::BandwidthTrace::random_walk(
                                       8000.0, 0.4, 0.5, 120.0, 7 + round, 500.0),
                                   .rtt = sim::milliseconds(20), .faults = {}});
    std::int64_t expected = 0;
    int completed = 0;
    int started = 0;
    for (double t = 0.0; t < 30.0; t += rng.exponential(1.0)) {
      const auto bytes = static_cast<std::int64_t>(rng.uniform(10'000.0, 2e6));
      ++started;
      simulator.schedule_at(sim::seconds(t), [&link, &expected, &completed, bytes] {
        link.start_transfer(bytes,
                            [&expected, &completed, bytes](const net::TransferResult& r) {
                              ASSERT_EQ(r.status, net::TransferStatus::kCompleted);
                              expected += bytes;
                              ++completed;
                            });
      });
    }
    simulator.run();
    EXPECT_EQ(completed, started);
    EXPECT_EQ(link.bytes_delivered(), expected);
  }
}

// ---------------------------------------------------------------------------
// Retry-with-backoff invariants (DESIGN.md §10): across randomized outage
// plans, deadlines and retry policies, a request (a) settles exactly once,
// (b) never retries past its budget, and (c) never *starts* a retry at or
// past its playback deadline.

TEST(RecoveryProperty, RetryBudgetAndDeadlineNeverExceeded) {
  Rng rng(77);
  int delivered_total = 0;
  int unfinished_total = 0;
  for (int round = 0; round < 8; ++round) {
    sim::Simulator simulator;
    obs::Telemetry telemetry;
    // One outage covering every first attempt: all requests go out at t=0
    // and fail fast (RTT), so every delivery is a retry delivery and the
    // deadline gate applies to it.
    net::FaultPlan faults;
    const double outage_s = rng.uniform(0.8, 1.2);
    faults.outages.push_back({.start_s = 0.0, .duration_s = outage_s});
    net::Link link(simulator,
                   net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(8'000.0),
                                   .rtt = sim::milliseconds(20),
                                   .loss_rate = 0.0,
                                   .faults = std::move(faults)});
    core::TransportOptions options;
    options.max_concurrent = 1;
    options.telemetry = &telemetry;
    options.recovery.enabled = true;
    options.recovery.max_retries = rng.uniform_int(1, 4);
    options.recovery.base_backoff =
        sim::milliseconds(rng.uniform_int(150, 400));
    options.recovery.backoff_multiplier = rng.uniform(1.0, 2.5);
    core::SingleLinkTransport transport(link, options);

    const int requests = 12;
    std::vector<int> fired(requests, 0);
    std::vector<sim::Time> settled(requests, sim::kTimeZero);
    std::vector<core::FetchOutcome> outcomes(
        requests, core::FetchOutcome::kDropped);
    std::vector<sim::Time> deadlines(requests, sim::kTimeZero);
    for (int i = 0; i < requests; ++i) {
      core::ChunkRequest req;
      req.id = net::to_chunk_id(
          {{static_cast<geo::TileId>(i % 8), 0}, media::Encoding::kAvc, 0});
      req.bytes = rng.uniform_int(50'000, 500'000);
      req.deadline = sim::seconds(rng.uniform(outage_s + 0.1, 5.0));
      deadlines[static_cast<std::size_t>(i)] = req.deadline;
      req.on_done = [&fired, &settled, &outcomes, i](sim::Time t,
                                                     core::FetchOutcome o) {
        ++fired[static_cast<std::size_t>(i)];
        settled[static_cast<std::size_t>(i)] = t;
        outcomes[static_cast<std::size_t>(i)] = o;
      };
      transport.fetch(std::move(req));
    }
    simulator.run_until(sim::seconds(60.0));

    const auto* retries = telemetry.metrics().find_counter("transport.retries");
    ASSERT_NE(retries, nullptr);
    // (b) Aggregate retry budget: never more than max_retries per request.
    EXPECT_LE(retries->value(),
              static_cast<std::int64_t>(requests) *
                  options.recovery.max_retries);
    // A retry dispatch is gated on `now < deadline` and (with one transfer
    // at a time on an 8 Mbps link) finishes within bytes/capacity + RTT.
    const sim::Duration max_transfer =
        sim::seconds(500'000.0 / 1'000'000.0) + sim::milliseconds(100);
    for (int i = 0; i < requests; ++i) {
      const auto s = static_cast<std::size_t>(i);
      // (a) Exactly-once settlement.
      EXPECT_EQ(fired[s], 1) << "request " << i;
      if (core::delivered(outcomes[s])) {
        ++delivered_total;
        // (c) Delivery implies its (retry) dispatch started pre-deadline.
        EXPECT_LT(settled[s], deadlines[s] + max_transfer) << "request " << i;
      } else {
        ++unfinished_total;
      }
    }
  }
  // Non-vacuity: the sweep produced both recoveries and casualties.
  EXPECT_GT(delivered_total, 0);
  EXPECT_GT(unfinished_total, 0);
}

// ---------------------------------------------------------------------------
// Fusion probability maps are distributions under any context.

TEST(FusionProperty, AlwaysADistribution) {
  auto geometry = std::make_shared<geo::TileGeometry>(
      geo::make_projection("equirectangular"), geo::TileGrid(4, 6));
  Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    hmp::ViewingContext context;
    if (rng.bernoulli(0.5)) context.max_speed_dps = rng.uniform(20.0, 200.0);
    if (rng.bernoulli(0.5)) {
      context.pose = rng.bernoulli(0.5) ? hmp::Pose::kLying : hmp::Pose::kSitting;
    }
    hmp::FusionPredictor fusion(geometry, {100.0, 90.0},
                                hmp::make_orientation_predictor("dead-reckoning"),
                                nullptr, context);
    for (int i = 0; i < 5; ++i) {
      fusion.observe({sim::milliseconds(40 * i),
                      {rng.uniform(-180.0, 180.0), rng.uniform(-60.0, 60.0), 0.0}});
    }
    const auto probs =
        fusion.tile_probabilities(sim::seconds(rng.uniform(0.0, 4.0)), 0);
    double sum = 0.0;
    for (double p : probs) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// OOS selection never duplicates FoV tiles and respects budgets.

TEST(OosProperty, NeverSelectsFovTilesAndRespectsBudget) {
  media::VideoModelConfig cfg;
  cfg.duration_s = 4.0;
  cfg.seed = 3;
  auto video = std::make_shared<media::VideoModel>(cfg);
  Rng rng(41);
  for (int round = 0; round < 25; ++round) {
    std::vector<double> probs(static_cast<std::size_t>(video->tile_count()));
    double total = 0.0;
    for (double& p : probs) {
      p = rng.uniform(0.0, 1.0);
      total += p;
    }
    for (double& p : probs) p /= total;
    std::vector<geo::TileId> fov;
    for (geo::TileId t = 0; t < video->tile_count(); ++t) {
      if (rng.bernoulli(0.3)) fov.push_back(t);
    }
    if (fov.empty()) fov.push_back(0);

    const double budget = rng.uniform(0.0, 1.5);
    abr::OosSelector selector({.budget_fraction = budget,
                               .accuracy_scaling = false});
    abr::ChunkPlan plan;
    plan.index = 1;
    plan.fov_quality = static_cast<media::QualityLevel>(rng.uniform_int(0, 4));
    for (geo::TileId t : fov) {
      plan.fetches.push_back(
          {{{t, 1}, media::Encoding::kAvc, plan.fov_quality},
           abr::SpatialClass::kFov, 0.1});
    }
    const auto fov_bytes = plan.total_bytes(*video);
    selector.select(plan, *video, fov, probs, media::Encoding::kAvc);
    std::int64_t oos_bytes = 0;
    for (const auto& f : plan.fetches) {
      if (f.spatial != abr::SpatialClass::kOos) continue;
      EXPECT_TRUE(std::find(fov.begin(), fov.end(), f.address.key.tile) ==
                  fov.end());
      EXPECT_LE(f.address.level, plan.fov_quality);
      oos_bytes += video->size_bytes(f.address);
    }
    EXPECT_LE(static_cast<double>(oos_bytes),
              budget * static_cast<double>(fov_bytes) + 1.0);
  }
}

// ---------------------------------------------------------------------------
// End-to-end session invariants across encoding modes and planners.

using SessionParam = std::tuple<abr::EncodingMode, core::PlannerMode>;

class SessionProperty : public ::testing::TestWithParam<SessionParam> {};

TEST_P(SessionProperty, InvariantsHoldEndToEnd) {
  const auto& [mode, planner] = GetParam();
  media::VideoModelConfig vcfg;
  vcfg.duration_s = 12.0;
  vcfg.tile_rows = 2;
  vcfg.tile_cols = 4;
  vcfg.seed = 9;
  auto video = std::make_shared<media::VideoModel>(vcfg);
  hmp::HeadTraceConfig tcfg;
  tcfg.duration_s = 60.0;
  tcfg.seed = 5;
  const auto trace = hmp::generate_head_trace(tcfg);

  sim::Simulator simulator;
  net::Link link(simulator,
                 net::LinkConfig{.bandwidth = net::BandwidthTrace::constant(15'000.0),
                                 .rtt = sim::milliseconds(25), .faults = {}});
  core::SingleLinkTransport transport(link, {.max_concurrent = 8, .recovery = {}});
  core::SessionConfig config;
  config.abr.sperke.mode = mode;
  config.planner = planner;
  core::StreamingSession session(simulator, video, transport, trace, config);
  session.start();
  simulator.run_until(sim::seconds(500.0));

  const auto report = session.report();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.qoe.chunks_played, video->chunk_count());
  EXPECT_GE(report.qoe.mean_viewport_utility, 0.0);
  EXPECT_LE(report.qoe.mean_viewport_utility, 1.0);
  EXPECT_GE(report.qoe.bytes_downloaded, 0);
  EXPECT_LE(report.qoe.bytes_wasted, report.qoe.bytes_downloaded);
  EXPECT_EQ(static_cast<int>(report.viewport_utility_per_chunk.size()),
            video->chunk_count());
}

TEST_P(SessionProperty, DeterministicAcrossRuns) {
  const auto& [mode, planner] = GetParam();
  auto run_once = [&] {
    media::VideoModelConfig vcfg;
    vcfg.duration_s = 8.0;
    vcfg.tile_rows = 2;
    vcfg.tile_cols = 4;
    vcfg.seed = 9;
    auto video = std::make_shared<media::VideoModel>(vcfg);
    hmp::HeadTraceConfig tcfg;
    tcfg.duration_s = 40.0;
    tcfg.seed = 5;
    const auto trace = hmp::generate_head_trace(tcfg);
    sim::Simulator simulator;
    net::Link link(simulator,
                   net::LinkConfig{.bandwidth = net::BandwidthTrace::random_walk(
                                       9'000.0, 0.3, 1.0, 200.0, 4),
                                   .rtt = sim::milliseconds(25), .faults = {}});
    core::SingleLinkTransport transport(link, {.max_concurrent = 8, .recovery = {}});
    core::SessionConfig config;
    config.abr.sperke.mode = mode;
    config.planner = planner;
    core::StreamingSession session(simulator, video, transport, trace, config);
    session.start();
    simulator.run_until(sim::seconds(400.0));
    return session.report();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.qoe.bytes_downloaded, b.qoe.bytes_downloaded);
  EXPECT_EQ(a.qoe.bytes_wasted, b.qoe.bytes_wasted);
  EXPECT_EQ(a.fetches, b.fetches);
  EXPECT_EQ(a.upgrades, b.upgrades);
  EXPECT_DOUBLE_EQ(a.qoe.score, b.qoe.score);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndPlanners, SessionProperty,
    ::testing::Combine(::testing::Values(abr::EncodingMode::kAvcNoUpgrade,
                                         abr::EncodingMode::kAvcRefetch,
                                         abr::EncodingMode::kSvc,
                                         abr::EncodingMode::kHybrid),
                       ::testing::Values(core::PlannerMode::kFovGuided,
                                         core::PlannerMode::kFovAgnostic)));

// ---------------------------------------------------------------------------
// Head trace CSV round trip.

TEST(HeadTraceCsv, RoundTripPreservesOrientations) {
  hmp::HeadTraceConfig cfg;
  cfg.duration_s = 5.0;
  cfg.seed = 23;
  const auto trace = hmp::generate_head_trace(cfg);
  const auto restored = hmp::head_trace_from_csv(hmp::to_csv(trace), 25.0);
  ASSERT_EQ(restored.samples().size(), trace.samples().size());
  for (std::size_t i = 0; i < trace.samples().size(); i += 17) {
    EXPECT_NEAR(restored.samples()[i].orientation.yaw_deg,
                trace.samples()[i].orientation.yaw_deg, 1e-4);
    EXPECT_NEAR(restored.samples()[i].orientation.pitch_deg,
                trace.samples()[i].orientation.pitch_deg, 1e-4);
  }
}

TEST(HeadTraceCsv, RejectsMalformedInput) {
  EXPECT_THROW((void)hmp::head_trace_from_csv("", 25.0), std::runtime_error);
  EXPECT_THROW((void)hmp::head_trace_from_csv("a,b\n1,2\n", 25.0),
               std::runtime_error);
}

}  // namespace
}  // namespace sperke
