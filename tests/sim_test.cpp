#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.h"
#include "sim/simulator.h"

namespace sperke::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), kTimeZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(seconds(2.0), [&] { order.push_back(2); });
  s.schedule_at(seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(seconds(3.0), [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), seconds(3.0));
}

TEST(Simulator, SameTimeEventsFifoByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(seconds(1.0), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  Time fired = kTimeZero;
  s.schedule_at(seconds(1.0), [&] {
    s.schedule_after(seconds(0.5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, seconds(1.5));
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator s;
  s.schedule_at(seconds(5.0), [&] {
    s.schedule_at(seconds(1.0), [&] { EXPECT_EQ(s.now(), seconds(5.0)); });
  });
  s.run();
  EXPECT_EQ(s.now(), seconds(5.0));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int count = 0;
  s.schedule_at(seconds(1.0), [&] { ++count; });
  s.schedule_at(seconds(10.0), [&] { ++count; });
  s.run_until(seconds(5.0));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), seconds(5.0));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator s;
  s.run_until(seconds(7.0));
  EXPECT_EQ(s.now(), seconds(7.0));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(seconds(1.0), chain);
  };
  s.schedule_after(seconds(1.0), chain);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), seconds(10.0));
}

TEST(Simulator, ClearDropsPending) {
  Simulator s;
  bool fired = false;
  s.schedule_at(seconds(1.0), [&] { fired = true; });
  s.clear();
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 3; ++i) s.schedule_at(seconds(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(TimeHelpers, SecondsRoundTrips) {
  EXPECT_EQ(seconds(1.5).count(), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.25)), 2.25);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator s;
  std::vector<Time> fires;
  PeriodicTask task(s, seconds(1.0), [&] { fires.push_back(s.now()); });
  s.run_until(seconds(3.5));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], seconds(1.0));
  EXPECT_EQ(fires[2], seconds(3.0));
  task.stop();
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulator s;
  int count = 0;
  PeriodicTask task(s, seconds(1.0), [&] { ++count; });
  s.schedule_at(seconds(2.5), [&] { task.stop(); });
  s.run_until(seconds(10.0));
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, DestructionCancelsSafely) {
  Simulator s;
  int count = 0;
  {
    PeriodicTask task(s, seconds(1.0), [&] { ++count; });
    s.run_until(seconds(1.5));
  }
  s.run_until(seconds(10.0));
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTask, ExplicitStartTime) {
  Simulator s;
  std::vector<Time> fires;
  PeriodicTask task(s, seconds(0.0), seconds(2.0), [&] { fires.push_back(s.now()); });
  s.run_until(seconds(5.0));
  ASSERT_EQ(fires.size(), 3u);  // t = 0, 2, 4
  EXPECT_EQ(fires[0], kTimeZero);
  task.stop();
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  Simulator s;
  EXPECT_THROW(PeriodicTask(s, seconds(0.0), [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace sperke::sim
