#include <gtest/gtest.h>

#include "live/broadcast.h"
#include "live/crowd.h"
#include "live/platform.h"
#include "live/upload_vra.h"

namespace sperke::live {
namespace {

LiveBroadcastSession::Config config_for(const PlatformProfile& platform,
                                        NetworkConditions network) {
  LiveBroadcastSession::Config cfg;
  cfg.platform = platform;
  cfg.network = network;
  return cfg;
}

TEST(Platform, ProfilesAreDistinct) {
  const auto fb = PlatformProfile::facebook();
  const auto yt = PlatformProfile::youtube();
  const auto ps = PlatformProfile::periscope();
  EXPECT_EQ(fb.delivery, Delivery::kDashPull);
  EXPECT_EQ(yt.delivery, Delivery::kDashPull);
  EXPECT_EQ(ps.delivery, Delivery::kRtmpPush);
  EXPECT_EQ(fb.ladder_kbps.size(), 2u);   // 720p/1080p
  EXPECT_EQ(yt.ladder_kbps.size(), 6u);   // 144p..1080p
  EXPECT_GT(yt.segment_s, fb.segment_s);
}

TEST(Platform, Table2HasFiveConditions) {
  const auto conditions = table2_conditions();
  ASSERT_EQ(conditions.size(), 5u);
  EXPECT_EQ(conditions[0].label(), "No limit up / No limit down");
  EXPECT_EQ(conditions[3].up_kbps, 500.0);
  EXPECT_EQ(conditions[4].down_kbps, 500.0);
}

TEST(LiveBroadcast, UnconstrainedBaseLatencyOrdering) {
  // Table 2 row 1: Facebook < Periscope < YouTube.
  const auto fb =
      LiveBroadcastSession(config_for(PlatformProfile::facebook(), {})).run();
  const auto ps =
      LiveBroadcastSession(config_for(PlatformProfile::periscope(), {})).run();
  const auto yt =
      LiveBroadcastSession(config_for(PlatformProfile::youtube(), {})).run();
  ASSERT_GT(fb.segments_displayed, 10);
  ASSERT_GT(ps.segments_displayed, 10);
  ASSERT_GT(yt.segments_displayed, 10);
  EXPECT_LT(fb.mean_e2e_latency_s, ps.mean_e2e_latency_s);
  EXPECT_LT(ps.mean_e2e_latency_s, yt.mean_e2e_latency_s);
  // Base latencies are non-trivial (several seconds) even unconstrained.
  EXPECT_GT(fb.mean_e2e_latency_s, 3.0);
}

TEST(LiveBroadcast, UplinkThrottlingInflatesLatency) {
  const auto base =
      LiveBroadcastSession(config_for(PlatformProfile::facebook(), {})).run();
  const auto constrained = LiveBroadcastSession(
                               config_for(PlatformProfile::facebook(),
                                          {.up_kbps = 500.0, .down_kbps = 0.0}))
                               .run();
  EXPECT_GT(constrained.mean_e2e_latency_s, base.mean_e2e_latency_s + 1.0);
  // The fixed-bitrate broadcaster must drop segments at 0.5 Mbps.
  EXPECT_GT(constrained.segments_dropped_at_broadcaster, 0);
}

TEST(LiveBroadcast, MildUplinkThrottleInflatesLessThanSevere) {
  const auto mild = LiveBroadcastSession(
                        config_for(PlatformProfile::facebook(),
                                   {.up_kbps = 2000.0, .down_kbps = 0.0}))
                        .run();
  const auto severe = LiveBroadcastSession(
                          config_for(PlatformProfile::facebook(),
                                     {.up_kbps = 500.0, .down_kbps = 0.0}))
                          .run();
  EXPECT_LT(mild.mean_e2e_latency_s, severe.mean_e2e_latency_s);
}

TEST(LiveBroadcast, DownlinkThrottlingTriggersRateAdaptation) {
  const auto constrained = LiveBroadcastSession(
                               config_for(PlatformProfile::facebook(),
                                          {.up_kbps = 0.0, .down_kbps = 2000.0}))
                               .run();
  ASSERT_GT(constrained.segments_displayed, 5);
  // DASH adaptation must settle on the 1.5 Mbps rung (1080p needs 4 Mbps).
  EXPECT_LT(constrained.mean_displayed_kbps, 4000.0);
}

TEST(LiveBroadcast, SevereDownlinkInflatesLatency) {
  const auto base =
      LiveBroadcastSession(config_for(PlatformProfile::facebook(), {})).run();
  const auto constrained = LiveBroadcastSession(
                               config_for(PlatformProfile::facebook(),
                                          {.up_kbps = 0.0, .down_kbps = 500.0}))
                               .run();
  // 0.5 Mbps cannot even carry the lowest Facebook rung in real time.
  EXPECT_GT(constrained.mean_e2e_latency_s, base.mean_e2e_latency_s * 2.0);
}

TEST(LiveBroadcast, RejectsBadConfig) {
  auto cfg = config_for(PlatformProfile::facebook(), {});
  cfg.platform.ladder_kbps.clear();
  EXPECT_THROW(LiveBroadcastSession{cfg}, std::invalid_argument);
  cfg = config_for(PlatformProfile::facebook(), {});
  cfg.platform.segment_s = 0.0;
  EXPECT_THROW(LiveBroadcastSession{cfg}, std::invalid_argument);
}

TEST(LiveBroadcast, UploadPolicyPreventsBroadcasterDrops) {
  // A 4 Mbps feed over a 1 Mbps uplink: without adaptation the encoder
  // must drop; with spatial fallback it fits by shrinking the horizon.
  auto cfg = config_for(PlatformProfile::facebook(),
                        {.up_kbps = 1000.0, .down_kbps = 0.0});
  cfg.platform.upload_kbps = 4000.0;
  const auto fixed = LiveBroadcastSession(cfg).run();
  EXPECT_GT(fixed.segments_dropped_at_broadcaster, 0);
  EXPECT_DOUBLE_EQ(fixed.mean_uploaded_horizon_deg, 360.0);

  SpatialFallbackPolicy policy(4000.0, 120.0);
  cfg.upload_policy = &policy;
  const auto adapted = LiveBroadcastSession(cfg).run();
  EXPECT_EQ(adapted.segments_dropped_at_broadcaster, 0);
  EXPECT_LT(adapted.mean_uploaded_horizon_deg, 360.0);
  EXPECT_LT(adapted.mean_e2e_latency_s, fixed.mean_e2e_latency_s);
}

TEST(LiveBroadcast, UplinkDisruptionTriggersSpatialFallback) {
  // A 4 Mbps feed over an ample 6 Mbps uplink — healthy until a scheduled
  // mid-broadcast collapse to a quarter capacity (DESIGN.md §10). Without
  // adaptation the encoder backlog grows and segments drop; the paper's
  // spatial fallback rides out the disruption by shrinking the uploaded
  // horizon only while the fault lasts.
  auto cfg = config_for(PlatformProfile::facebook(),
                        {.up_kbps = 6000.0, .down_kbps = 0.0});
  cfg.platform.upload_kbps = 4000.0;
  cfg.uplink_faults.capacity_collapses.push_back(
      {.start_s = 50.0, .duration_s = 40.0, .factor = 0.25});
  const auto fixed = LiveBroadcastSession(cfg).run();
  EXPECT_GT(fixed.segments_dropped_at_broadcaster, 0);
  EXPECT_DOUBLE_EQ(fixed.mean_uploaded_horizon_deg, 360.0);

  SpatialFallbackPolicy policy(4000.0, 120.0);
  cfg.upload_policy = &policy;
  const auto adapted = LiveBroadcastSession(cfg).run();
  // Only the segment straddling the collapse edge (decided at the pre-fault
  // capacity) may still drop; every segment decided inside the window fits.
  EXPECT_LE(adapted.segments_dropped_at_broadcaster, 1);
  EXPECT_LT(adapted.segments_dropped_at_broadcaster,
            fixed.segments_dropped_at_broadcaster);
  // Shrunk during the disruption, full 360° outside it — the mean sits
  // strictly between the fault-window horizon and the healthy one.
  EXPECT_LT(adapted.mean_uploaded_horizon_deg, 360.0);
  EXPECT_GT(adapted.mean_uploaded_horizon_deg, 130.0);
}

TEST(LiveBroadcast, DownlinkOutageIsRetriedNotFatal) {
  // A hard mid-broadcast downlink outage kills the in-flight segment
  // transfer; the viewer re-requests from the same index once the link
  // returns, so the broadcast still plays out (at worse latency).
  auto clean_cfg = config_for(PlatformProfile::facebook(), {});
  const auto clean = LiveBroadcastSession(clean_cfg).run();

  auto faulted_cfg = config_for(PlatformProfile::facebook(), {});
  faulted_cfg.downlink_faults.outages.push_back(
      {.start_s = 60.0, .duration_s = 8.0});
  const auto faulted = LiveBroadcastSession(faulted_cfg).run();
  EXPECT_GT(faulted.segments_displayed, 0);
  EXPECT_GE(clean.segments_displayed, faulted.segments_displayed);
  EXPECT_GT(faulted.mean_e2e_latency_s, clean.mean_e2e_latency_s);
}

TEST(UploadVra, FixedPolicyIgnoresCapacity) {
  FixedQualityPolicy policy(4000.0);
  const auto d = policy.decide(100.0);
  EXPECT_DOUBLE_EQ(d.horizon_deg, 360.0);
  EXPECT_DOUBLE_EQ(d.upload_kbps, 4000.0);
}

TEST(UploadVra, QualityAdaptiveSqueezesBitrate) {
  QualityAdaptivePolicy policy(4000.0, 500.0);
  EXPECT_DOUBLE_EQ(policy.decide(50'000.0).upload_kbps, 4000.0);  // capped at target
  const auto d = policy.decide(2000.0);
  EXPECT_DOUBLE_EQ(d.horizon_deg, 360.0);
  EXPECT_NEAR(d.upload_kbps, 1800.0, 1e-9);
  EXPECT_DOUBLE_EQ(policy.decide(100.0).upload_kbps, 500.0);  // floor
}

TEST(UploadVra, SpatialFallbackShrinksHorizonNotQuality) {
  SpatialFallbackPolicy policy(4000.0, 120.0);
  const auto full = policy.decide(50'000.0);
  EXPECT_DOUBLE_EQ(full.horizon_deg, 360.0);
  const auto half = policy.decide(2000.0);
  EXPECT_NEAR(half.horizon_deg, 162.0, 1.0);  // 360*1800/4000
  // Per-degree density preserved at the target.
  EXPECT_NEAR(half.upload_kbps / half.horizon_deg, 4000.0 / 360.0, 1e-6);
  // Floor: never narrower than the stage.
  const auto tiny = policy.decide(300.0);
  EXPECT_DOUBLE_EQ(tiny.horizon_deg, 120.0);
}

TEST(UploadVra, CoverageProbabilityBehaves) {
  EXPECT_DOUBLE_EQ(horizon_coverage_probability(360.0, 40.0), 1.0);
  EXPECT_NEAR(horizon_coverage_probability(80.0, 40.0), 0.6827, 0.01);  // +-1 sigma
  EXPECT_GT(horizon_coverage_probability(180.0, 40.0),
            horizon_coverage_probability(90.0, 40.0));
  EXPECT_DOUBLE_EQ(horizon_coverage_probability(0.0, 40.0), 0.0);
}

TEST(UploadVra, DensityUtilityMonotone) {
  const double target = 4000.0 / 360.0;
  EXPECT_DOUBLE_EQ(density_utility(target, target), 1.0);
  EXPECT_GT(density_utility(target, target), density_utility(target / 2.0, target));
  EXPECT_DOUBLE_EQ(density_utility(target / 32.0, target), 0.0);
}

TEST(UploadVra, SpatialFallbackBeatsQualityDropOnNarrowInterest) {
  // Concert scenario: gaze concentrated (sigma 40 deg); uplink at 1.5 Mbps.
  const double target = 4000.0;
  const double sigma = 40.0;
  QualityAdaptivePolicy quality(target, 250.0);
  SpatialFallbackPolicy spatial(target, 120.0);
  const double u_quality =
      expected_viewer_utility(quality.decide(1500.0), target, sigma);
  const double u_spatial =
      expected_viewer_utility(spatial.decide(1500.0), target, sigma);
  EXPECT_GT(u_spatial, u_quality);
}

TEST(UploadVra, QualityDropWinsWhenInterestIsEverywhere) {
  // Wide interest (sigma 170 deg): cutting the horizon loses viewers.
  const double target = 4000.0;
  QualityAdaptivePolicy quality(target, 250.0);
  SpatialFallbackPolicy spatial(target, 120.0);
  const double u_quality =
      expected_viewer_utility(quality.decide(2500.0), target, 170.0);
  const double u_spatial =
      expected_viewer_utility(spatial.decide(2500.0), target, 170.0);
  EXPECT_GT(u_quality, u_spatial);
}

TEST(UploadVra, RejectsBadParameters) {
  EXPECT_THROW(FixedQualityPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(QualityAdaptivePolicy(1000.0, 2000.0), std::invalid_argument);
  EXPECT_THROW(SpatialFallbackPolicy(1000.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SpatialFallbackPolicy(1000.0, 400.0), std::invalid_argument);
}

TEST(LiveCrowdHmp, TimeGatedVisibility) {
  LiveCrowdHmp crowd(8, 10);
  const std::vector<geo::TileId> tiles{3};
  crowd.record(2, tiles, sim::seconds(10.0));
  EXPECT_EQ(crowd.observations(2, sim::seconds(5.0)), 0);
  EXPECT_EQ(crowd.observations(2, sim::seconds(10.0)), 1);
  const auto early = crowd.probabilities(2, sim::seconds(5.0));
  const auto late = crowd.probabilities(2, sim::seconds(15.0));
  EXPECT_NEAR(early[3], 1.0 / 8.0, 1e-9);  // uniform before the record lands
  EXPECT_GT(late[3], early[3]);
}

TEST(LiveCrowdHmp, ProbabilitiesSumToOne) {
  LiveCrowdHmp crowd(8, 4);
  const std::vector<geo::TileId> tiles{0, 1, 2};
  crowd.record(0, tiles, sim::seconds(1.0));
  crowd.record(0, tiles, sim::seconds(2.0));
  const auto probs = crowd.probabilities(0, sim::seconds(3.0));
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LiveCrowdHmp, OutOfOrderRecordsSort) {
  LiveCrowdHmp crowd(4, 2);
  const std::vector<geo::TileId> a{0};
  const std::vector<geo::TileId> b{1};
  crowd.record(0, a, sim::seconds(10.0));
  crowd.record(0, b, sim::seconds(5.0));
  EXPECT_EQ(crowd.observations(0, sim::seconds(6.0)), 1);
  EXPECT_EQ(crowd.observations(0, sim::seconds(11.0)), 2);
}

TEST(LiveCrowdHmp, RangeChecks) {
  LiveCrowdHmp crowd(4, 2);
  const std::vector<geo::TileId> bad{9};
  EXPECT_THROW(crowd.record(0, bad, sim::kTimeZero), std::out_of_range);
  const std::vector<geo::TileId> ok{0};
  EXPECT_THROW(crowd.record(5, ok, sim::kTimeZero), std::out_of_range);
  EXPECT_THROW((void)crowd.probabilities(-1, sim::kTimeZero), std::out_of_range);
}

}  // namespace
}  // namespace sperke::live
